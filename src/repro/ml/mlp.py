"""Multi-layer perceptron with manual backpropagation (NumPy only)."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.ml.base import Classifier


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exponentials = np.exp(shifted)
    return exponentials / exponentials.sum(axis=1, keepdims=True)


class MLPClassifier(Classifier):
    """Fully-connected ReLU network trained with mini-batch Adam.

    Args:
        hidden_sizes: Width of each hidden layer.
        epochs: Training epochs.
        batch_size: Mini-batch size.
        learning_rate: Adam step size.
        l2: L2 weight decay.
        random_state: Initialization and shuffling seed.
    """

    name = "mlp"

    def __init__(self, hidden_sizes: Sequence[int] = (64, 32), epochs: int = 80,
                 batch_size: int = 32, learning_rate: float = 1e-2,
                 l2: float = 1e-4, random_state: int = 0) -> None:
        self.hidden_sizes = tuple(hidden_sizes)
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.l2 = l2
        self.random_state = random_state
        self._weights: List[np.ndarray] = []
        self._biases: List[np.ndarray] = []

    # ------------------------------------------------------------------ #

    def _initialize(self, num_features: int, num_classes: int) -> None:
        rng = np.random.default_rng(self.random_state)
        sizes = [num_features, *self.hidden_sizes, num_classes]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(2.0 / fan_in)
            self._weights.append(rng.normal(0.0, limit, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

    def _forward(self, X: np.ndarray) -> Tuple[List[np.ndarray], np.ndarray]:
        activations = [X]
        hidden = X
        for layer in range(len(self._weights) - 1):
            hidden = _relu(hidden @ self._weights[layer] + self._biases[layer])
            activations.append(hidden)
        logits = hidden @ self._weights[-1] + self._biases[-1]
        return activations, logits

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        X = self._validate(X, y)
        encoded = self._encode_labels(y)
        num_classes = len(self.classes_)
        self._initialize(X.shape[1], num_classes)

        targets = np.zeros((len(encoded), num_classes))
        targets[np.arange(len(encoded)), encoded] = 1.0

        rng = np.random.default_rng(self.random_state)
        # Adam state
        m_w = [np.zeros_like(w) for w in self._weights]
        v_w = [np.zeros_like(w) for w in self._weights]
        m_b = [np.zeros_like(b) for b in self._biases]
        v_b = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, epsilon = 0.9, 0.999, 1e-8
        step = 0

        for _ in range(self.epochs):
            order = rng.permutation(len(X))
            for start in range(0, len(X), self.batch_size):
                batch = order[start:start + self.batch_size]
                if len(batch) == 0:
                    continue
                step += 1
                activations, logits = self._forward(X[batch])
                probabilities = _softmax(logits)
                delta = (probabilities - targets[batch]) / len(batch)

                gradients_w: List[np.ndarray] = [None] * len(self._weights)
                gradients_b: List[np.ndarray] = [None] * len(self._biases)
                for layer in reversed(range(len(self._weights))):
                    gradients_w[layer] = (activations[layer].T @ delta
                                          + self.l2 * self._weights[layer])
                    gradients_b[layer] = delta.sum(axis=0)
                    if layer > 0:
                        delta = (delta @ self._weights[layer].T) * (activations[layer] > 0)

                for layer in range(len(self._weights)):
                    for state_m, state_v, grad, param in (
                            (m_w, v_w, gradients_w, self._weights),
                            (m_b, v_b, gradients_b, self._biases)):
                        state_m[layer] = beta1 * state_m[layer] + (1 - beta1) * grad[layer]
                        state_v[layer] = beta2 * state_v[layer] + (1 - beta2) * grad[layer] ** 2
                        m_hat = state_m[layer] / (1 - beta1 ** step)
                        v_hat = state_v[layer] / (1 - beta2 ** step)
                        param[layer] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + epsilon)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self._weights:
            raise RuntimeError("MLPClassifier used before fit")
        X = self._validate(X)
        _, logits = self._forward(X)
        return _softmax(logits)
