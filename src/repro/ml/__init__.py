"""Classical machine-learning models implemented from scratch on NumPy.

These replace the scikit-learn dependency of the original PhishingHook work
(see the DESIGN.md substitution table).  All classifiers follow the same
``fit(X, y)`` / ``predict(X)`` / ``predict_proba(X)`` protocol and operate on
dense ``numpy`` feature matrices produced by :mod:`repro.features`.
"""

from repro.ml.base import Classifier
from repro.ml.preprocessing import StandardScaler, MinMaxScaler, train_test_split
from repro.ml.metrics import (
    accuracy_score,
    precision_score,
    recall_score,
    f1_score,
    confusion_matrix,
    roc_auc_score,
    classification_summary,
)
from repro.ml.logistic_regression import LogisticRegression
from repro.ml.naive_bayes import GaussianNaiveBayes, MultinomialNaiveBayes
from repro.ml.knn import KNearestNeighbors
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.random_forest import RandomForestClassifier
from repro.ml.gradient_boosting import GradientBoostingClassifier
from repro.ml.svm import LinearSVM
from repro.ml.mlp import MLPClassifier

__all__ = [
    "Classifier",
    "StandardScaler",
    "MinMaxScaler",
    "train_test_split",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "confusion_matrix",
    "roc_auc_score",
    "classification_summary",
    "LogisticRegression",
    "GaussianNaiveBayes",
    "MultinomialNaiveBayes",
    "KNearestNeighbors",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "GradientBoostingClassifier",
    "LinearSVM",
    "MLPClassifier",
]
