"""Classification metrics."""

from __future__ import annotations

from typing import Dict

import numpy as np


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exactly-matching predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) == 0:
        return 0.0
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray,
                     positive_label: int = 1) -> Dict[str, int]:
    """Binary confusion matrix as a dict with tp/fp/tn/fn counts."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    positive_true = y_true == positive_label
    positive_pred = y_pred == positive_label
    return {
        "tp": int(np.sum(positive_true & positive_pred)),
        "fp": int(np.sum(~positive_true & positive_pred)),
        "tn": int(np.sum(~positive_true & ~positive_pred)),
        "fn": int(np.sum(positive_true & ~positive_pred)),
    }


def precision_score(y_true: np.ndarray, y_pred: np.ndarray,
                    positive_label: int = 1) -> float:
    """tp / (tp + fp); 0 when no positive predictions were made."""
    cm = confusion_matrix(y_true, y_pred, positive_label)
    denominator = cm["tp"] + cm["fp"]
    return cm["tp"] / denominator if denominator else 0.0


def recall_score(y_true: np.ndarray, y_pred: np.ndarray,
                 positive_label: int = 1) -> float:
    """tp / (tp + fn); 0 when there are no positive ground-truth samples."""
    cm = confusion_matrix(y_true, y_pred, positive_label)
    denominator = cm["tp"] + cm["fn"]
    return cm["tp"] / denominator if denominator else 0.0


def f1_score(y_true: np.ndarray, y_pred: np.ndarray,
             positive_label: int = 1) -> float:
    """Harmonic mean of precision and recall."""
    precision = precision_score(y_true, y_pred, positive_label)
    recall = recall_score(y_true, y_pred, positive_label)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def roc_auc_score(y_true: np.ndarray, scores: np.ndarray,
                  positive_label: int = 1) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) formulation.

    ``scores`` are the predicted probabilities (or any monotone score) of the
    positive class.  Returns 0.5 when only one class is present.
    """
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    positives = scores[y_true == positive_label]
    negatives = scores[y_true != positive_label]
    if len(positives) == 0 or len(negatives) == 0:
        return 0.5
    all_scores = np.concatenate([negatives, positives])
    # midranks (ties get the average of the rank range they span)
    unique, inverse, counts = np.unique(all_scores, return_inverse=True,
                                        return_counts=True)
    cumulative = np.cumsum(counts).astype(np.float64)
    midranks = cumulative - (counts - 1) / 2.0
    ranks = midranks[inverse]
    rank_sum_positive = ranks[len(negatives):].sum()
    auc = (rank_sum_positive - len(positives) * (len(positives) + 1) / 2.0) / (
        len(positives) * len(negatives))
    return float(auc)


def classification_summary(y_true: np.ndarray, y_pred: np.ndarray,
                           scores: np.ndarray = None,
                           positive_label: int = 1) -> Dict[str, float]:
    """All headline metrics in one dict (the row format of the E1 table)."""
    summary = {
        "accuracy": accuracy_score(y_true, y_pred),
        "precision": precision_score(y_true, y_pred, positive_label),
        "recall": recall_score(y_true, y_pred, positive_label),
        "f1": f1_score(y_true, y_pred, positive_label),
    }
    if scores is not None:
        summary["roc_auc"] = roc_auc_score(y_true, scores, positive_label)
    return summary
