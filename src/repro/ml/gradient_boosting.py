"""Gradient boosting with regression stumps/trees on the logistic loss."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.ml.base import Classifier


@dataclass
class _RegressionNode:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_RegressionNode"] = None
    right: Optional["_RegressionNode"] = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


class _RegressionTree:
    """A small least-squares regression tree used as the boosting weak learner."""

    def __init__(self, max_depth: int = 3, min_samples_leaf: int = 2) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.root: Optional[_RegressionNode] = None

    def fit(self, X: np.ndarray, residuals: np.ndarray) -> "_RegressionTree":
        self.root = self._grow(X, residuals, depth=0)
        return self

    def _grow(self, X: np.ndarray, residuals: np.ndarray, depth: int) -> _RegressionNode:
        node = _RegressionNode(value=float(residuals.mean()) if len(residuals) else 0.0)
        if depth >= self.max_depth or len(residuals) < 2 * self.min_samples_leaf:
            return node
        best_gain = 1e-12
        best: Optional[tuple] = None
        parent_sse = float(np.sum((residuals - residuals.mean()) ** 2))
        for feature in range(X.shape[1]):
            order = np.argsort(X[:, feature], kind="mergesort")
            values = X[order, feature]
            targets = residuals[order]
            cumulative_sum = np.cumsum(targets)
            cumulative_squares = np.cumsum(targets ** 2)
            total_sum = cumulative_sum[-1]
            total_squares = cumulative_squares[-1]
            change = np.flatnonzero(np.diff(values) > 1e-12)
            for position in change:
                n_left = position + 1
                n_right = len(targets) - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                left_sum = cumulative_sum[position]
                right_sum = total_sum - left_sum
                left_sse = cumulative_squares[position] - left_sum ** 2 / n_left
                right_sse = (total_squares - cumulative_squares[position]
                             - right_sum ** 2 / n_right)
                gain = parent_sse - (left_sse + right_sse)
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float((values[position] + values[position + 1]) / 2.0))
        if best is None:
            return node
        feature, threshold = best
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], residuals[mask], depth + 1)
        node.right = self._grow(X[~mask], residuals[~mask], depth + 1)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        output = np.zeros(X.shape[0])
        for row in range(X.shape[0]):
            node = self.root
            while node is not None and not node.is_leaf:
                node = node.left if X[row, node.feature] <= node.threshold else node.right
            output[row] = node.value if node is not None else 0.0
        return output


class GradientBoostingClassifier(Classifier):
    """Binary gradient boosting on the logistic loss (GBM).

    Args:
        n_estimators: Number of boosting rounds.
        learning_rate: Shrinkage applied to each tree's contribution.
        max_depth: Depth of the regression-tree weak learners.
        subsample: Row-subsampling fraction per round (stochastic GBM).
        random_state: Seed for subsampling.
    """

    name = "gradient-boosting"

    def __init__(self, n_estimators: int = 60, learning_rate: float = 0.2,
                 max_depth: int = 3, subsample: float = 1.0,
                 random_state: int = 0) -> None:
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.random_state = random_state
        self.trees_: List[_RegressionTree] = []
        self.initial_logit_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        X = self._validate(X, y)
        encoded = self._encode_labels(y)
        if len(self.classes_) != 2:
            raise ValueError("GradientBoostingClassifier supports binary labels only")
        targets = encoded.astype(np.float64)
        positive_rate = np.clip(targets.mean(), 1e-6, 1 - 1e-6)
        self.initial_logit_ = float(np.log(positive_rate / (1 - positive_rate)))
        logits = np.full(len(targets), self.initial_logit_)
        rng = np.random.default_rng(self.random_state)
        self.trees_ = []
        for _ in range(self.n_estimators):
            probabilities = 1.0 / (1.0 + np.exp(-logits))
            residuals = targets - probabilities
            if self.subsample < 1.0:
                rows = rng.choice(len(targets),
                                  size=max(2, int(len(targets) * self.subsample)),
                                  replace=False)
            else:
                rows = np.arange(len(targets))
            tree = _RegressionTree(max_depth=self.max_depth).fit(X[rows], residuals[rows])
            self.trees_.append(tree)
            logits += self.learning_rate * tree.predict(X)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw additive logits."""
        X = self._validate(X)
        logits = np.full(X.shape[0], self.initial_logit_)
        for tree in self.trees_:
            logits += self.learning_rate * tree.predict(X)
        return logits

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("GradientBoostingClassifier used before fit")
        positive = 1.0 / (1.0 + np.exp(-self.decision_function(X)))
        return np.column_stack([1.0 - positive, positive])
