"""Generic cross-validation over (feature extractor, classifier) pipelines."""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.datasets.corpus import Corpus
from repro.datasets.splits import k_fold_indices
from repro.features.base import FeatureExtractor
from repro.ml.base import Classifier
from repro.ml.metrics import classification_summary
from repro.ml.preprocessing import StandardScaler


def cross_validate(corpus: Corpus,
                   make_extractor: Callable[[], FeatureExtractor],
                   make_classifier: Callable[[], Classifier],
                   folds: int = 5, seed: int = 0,
                   scale_features: bool = False) -> Dict[str, float]:
    """Stratified k-fold cross-validation of a feature/classifier pipeline.

    The extractor is re-fitted on every training fold (so learned
    vocabularies never leak from test folds) and the mean of each headline
    metric across folds is returned.

    Args:
        corpus: Labelled corpus.
        make_extractor: Factory producing a fresh extractor per fold.
        make_classifier: Factory producing a fresh classifier per fold.
        folds: Number of folds.
        seed: Fold-assignment seed.
        scale_features: Standardize features per fold.

    Returns:
        Mean metrics: accuracy, precision, recall, f1, roc_auc.
    """
    labels = np.asarray(corpus.labels())
    fold_metrics: List[Dict[str, float]] = []
    for train_indices, test_indices in k_fold_indices(len(corpus), labels.tolist(),
                                                      k=folds, seed=seed):
        train_corpus = corpus.subset(train_indices)
        test_corpus = corpus.subset(test_indices)
        extractor = make_extractor()
        X_train = extractor.fit_transform(train_corpus)
        X_test = extractor.transform(test_corpus)
        if scale_features:
            scaler = StandardScaler()
            X_train = scaler.fit_transform(X_train)
            X_test = scaler.transform(X_test)
        classifier = make_classifier()
        classifier.fit(X_train, labels[train_indices])
        predictions = classifier.predict(X_test)
        probabilities = classifier.predict_proba(X_test)
        positive_column = (int(np.flatnonzero(classifier.classes_ == 1)[0])
                           if 1 in classifier.classes_ else probabilities.shape[1] - 1)
        fold_metrics.append(classification_summary(
            labels[test_indices], predictions, scores=probabilities[:, positive_column]))
    return {metric: float(np.mean([fold[metric] for fold in fold_metrics]))
            for metric in fold_metrics[0]}
