"""Evaluation harness: cross-validation, the E1-E16 experiments and reporting.

Each experiment function reproduces one claim of the paper (see DESIGN.md's
experiment index) and returns an :class:`~repro.evaluation.reporting.ExperimentResult`
whose rows can be rendered as the corresponding table or figure with
:func:`~repro.evaluation.reporting.format_table` /
:func:`~repro.evaluation.reporting.format_series`.
"""

from repro.evaluation.reporting import (
    ExperimentResult,
    format_table,
    format_series,
)
from repro.evaluation.crossval import cross_validate
from repro.evaluation.experiments import (
    E1Config,
    E2Config,
    E3Config,
    E4Config,
    E5Config,
    E6Config,
    E7Config,
    E8Config,
    E9Config,
    E10Config,
    E11Config,
    E12Config,
    E13Config,
    E14Config,
    E15Config,
    E16Config,
    run_e1_phishinghook_zoo,
    run_e2_obfuscation_degradation,
    run_e3_gnn_vs_baseline,
    run_e4_robustness_curve,
    run_e5_cross_platform,
    run_e6_dedup_ablation,
    run_e7_gnn_ablation,
    run_e8_scan_throughput,
    run_e9_gnn_throughput,
    run_e10_sharded_throughput,
    run_e11_watch_ingest,
    run_e12_cascade_throughput,
    run_e13_chaos_resilience,
    run_e14_registry_triage,
    run_e15_event_ingest,
    run_e16_observability,
)

__all__ = [
    "ExperimentResult",
    "format_table",
    "format_series",
    "cross_validate",
    "E1Config",
    "E2Config",
    "E3Config",
    "E4Config",
    "E5Config",
    "E6Config",
    "E7Config",
    "E8Config",
    "E9Config",
    "E10Config",
    "E11Config",
    "E12Config",
    "E13Config",
    "E14Config",
    "E15Config",
    "E16Config",
    "run_e1_phishinghook_zoo",
    "run_e2_obfuscation_degradation",
    "run_e3_gnn_vs_baseline",
    "run_e4_robustness_curve",
    "run_e5_cross_platform",
    "run_e6_dedup_ablation",
    "run_e7_gnn_ablation",
    "run_e8_scan_throughput",
    "run_e9_gnn_throughput",
    "run_e10_sharded_throughput",
    "run_e11_watch_ingest",
    "run_e12_cascade_throughput",
    "run_e13_chaos_resilience",
    "run_e14_registry_triage",
    "run_e15_event_ingest",
    "run_e16_observability",
]
