"""The E1-E9 experiment drivers (see DESIGN.md's experiment index).

Each ``run_*`` function generates its workload, trains the relevant models
and returns an :class:`~repro.evaluation.reporting.ExperimentResult`.  Default
configurations are sized to complete on a laptop in minutes; the benchmark
harness in ``benchmarks/`` calls these functions directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import ScamDetectConfig
from repro.core.pipeline import ScamDetectPipeline
from repro.datasets.corpus import Corpus
from repro.datasets.dedup import deduplicate
from repro.datasets.generator import CorpusGenerator, GeneratorConfig
from repro.datasets.splits import stratified_split
from repro.evaluation.reporting import ExperimentResult
from repro.features.ngrams import NgramExtractor
from repro.features.opcode_histogram import OpcodeHistogramExtractor
from repro.gnn.model import GNN_ARCHITECTURES
from repro.ml.metrics import accuracy_score, classification_summary
from repro.ml.random_forest import RandomForestClassifier
from repro.obfuscation.evm_passes import (
    ConstantBlinding,
    ControlFlowFlattening,
    DeadCodeInjection,
    InstructionSubstitution,
    JunkSelectorInsertion,
    OpaquePredicateInsertion,
)
from repro.obfuscation.pipeline import EVMObfuscator, WasmObfuscator
from repro.phishinghook.framework import PhishingHookFramework

# Pass split used by the robustness experiments (E3/E4): detectors may be
# hardened with *opcode-level* obfuscation seen at training time, while the
# attacker deploys *structural* obfuscation the detector has never seen.
TRAIN_TIME_PASSES = (InstructionSubstitution(), ConstantBlinding())
UNSEEN_TEST_PASSES = (DeadCodeInjection(), OpaquePredicateInsertion(),
                      ControlFlowFlattening(), JunkSelectorInsertion())


# --------------------------------------------------------------------------- #
# shared helpers


def obfuscate_corpus(corpus: Corpus, intensity: float, seed: int,
                     passes: Optional[Sequence] = None,
                     platform: str = "evm") -> Corpus:
    """Element-wise obfuscation of a corpus at ``intensity`` (labels preserved)."""
    if intensity <= 0.0:
        return corpus
    rng = random.Random(seed)

    def transform(sample):
        if platform == "wasm" or sample.platform == "wasm":
            obfuscator = WasmObfuscator(intensity=intensity,
                                        seed=rng.randrange(1 << 30))
        else:
            obfuscator = EVMObfuscator(passes=passes, intensity=intensity,
                                       seed=rng.randrange(1 << 30))
        return obfuscator.obfuscate(sample.bytecode)

    return corpus.map_bytecode(transform, obfuscated=True, intensity=intensity,
                               name=f"{corpus.name}-obf{intensity:.2f}")


def _histogram_rf_baseline(train: Corpus, seed: int = 0):
    """Fit the strongest PhishingHook-style baseline (opcode histogram + RF)."""
    extractor = OpcodeHistogramExtractor(vocabulary="mnemonic")
    features = extractor.fit_transform(train)
    classifier = RandomForestClassifier(n_estimators=40, random_state=seed)
    classifier.fit(features, np.asarray(train.labels()))
    return extractor, classifier


def _ngram_rf_baseline(train: Corpus, seed: int = 0):
    """Fit the opcode-bigram + random-forest baseline."""
    extractor = NgramExtractor(n=2, top_k=192)
    features = extractor.fit_transform(train)
    classifier = RandomForestClassifier(n_estimators=40, random_state=seed)
    classifier.fit(features, np.asarray(train.labels()))
    return extractor, classifier


def _baseline_accuracy(extractor, classifier, corpus: Corpus) -> float:
    features = extractor.transform(corpus)
    return accuracy_score(np.asarray(corpus.labels()), classifier.predict(features))


def _baseline_metrics(extractor, classifier, corpus: Corpus) -> Dict[str, float]:
    """Full metric set (accuracy/precision/recall/F1/ROC-AUC) of a baseline.

    Baselines are scored with the same :func:`classification_summary` as the
    GNN pipelines so comparison tables never mix real numbers with NaN
    placeholders.
    """
    features = extractor.transform(corpus)
    labels = np.asarray(corpus.labels())
    probabilities = classifier.predict_proba(features)
    predictions = classifier.classes_[np.argmax(probabilities, axis=1)]
    return classification_summary(labels, predictions,
                                  scores=probabilities[:, 1])


def _fit_gnn(train: Corpus, architecture: str, epochs: int, seed: int,
             readout: str = "max", num_layers: int = 2,
             node_feature_mode: str = "presence",
             include_markers: bool = True,
             include_structural: bool = True) -> ScamDetectPipeline:
    """Fit one ScamDetect GNN pipeline with the experiment conventions."""
    config = ScamDetectConfig(architecture=architecture, epochs=epochs, seed=seed,
                              readout=readout, num_layers=num_layers,
                              node_feature_mode=node_feature_mode,
                              include_marker_features=include_markers,
                              include_structural_features=include_structural)
    return ScamDetectPipeline(config).fit(train)


def _augmented_training_corpus(train: Corpus, intensity: float, seed: int) -> Corpus:
    """Training corpus hardened with train-time (opcode-level) obfuscation."""
    augmented = obfuscate_corpus(train, intensity, seed, passes=TRAIN_TIME_PASSES)
    return Corpus(list(train) + list(augmented), name=f"{train.name}-augmented")


# --------------------------------------------------------------------------- #
# E1: the PhishingHook 16-model zoo ("Table 1")


@dataclass
class E1Config:
    """Workload of the E1 zoo benchmark."""

    num_samples: int = 280
    malicious_fraction: float = 0.5
    label_noise: float = 0.05
    folds: int = 5
    seed: int = 0
    entry_names: Optional[Sequence[str]] = None  # None = all 16 models


def run_e1_phishinghook_zoo(config: Optional[E1Config] = None) -> ExperimentResult:
    """E1: reproduce PhishingHook's ~90% average accuracy over the 16-model zoo."""
    config = config or E1Config()
    corpus = CorpusGenerator(GeneratorConfig(
        platform="evm", num_samples=config.num_samples,
        malicious_fraction=config.malicious_fraction,
        label_noise=config.label_noise, seed=config.seed)).generate("e1-corpus")
    framework = PhishingHookFramework(folds=config.folds, seed=config.seed)
    evaluations = framework.evaluate(corpus, entry_names=config.entry_names)

    result = ExperimentResult(
        experiment_id="E1",
        title="PhishingHook 16-model zoo, 5-fold CV on the EVM phishing corpus")
    for evaluation in evaluations:
        result.rows.append({
            "model": evaluation.name,
            "encoding": evaluation.encoding,
            "accuracy": evaluation.mean_metrics["accuracy"],
            "precision": evaluation.mean_metrics["precision"],
            "recall": evaluation.mean_metrics["recall"],
            "f1": evaluation.mean_metrics["f1"],
            "roc_auc": evaluation.mean_metrics["roc_auc"],
        })
    accuracies = [row["accuracy"] for row in result.rows]
    result.summary = {
        "average_accuracy": float(np.mean(accuracies)) if accuracies else float("nan"),
        "best_accuracy": float(np.max(accuracies)) if accuracies else float("nan"),
        "num_models": float(len(accuracies)),
        "corpus_size": float(len(corpus)),
    }
    result.notes.append("paper claim: ~90% average detection accuracy across 16 models")
    return result


# --------------------------------------------------------------------------- #
# E2: obfuscation degrades opcode-pattern classifiers ("Figure 1")


@dataclass
class E2Config:
    """Workload of the E2 degradation sweep."""

    num_samples: int = 240
    label_noise: float = 0.02
    test_fraction: float = 0.3
    intensities: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0)
    seed: int = 0


def run_e2_obfuscation_degradation(config: Optional[E2Config] = None) -> ExperimentResult:
    """E2: train opcode-sequence baselines on clean code, test under obfuscation."""
    config = config or E2Config()
    corpus = CorpusGenerator(GeneratorConfig(
        platform="evm", num_samples=config.num_samples,
        label_noise=config.label_noise, seed=config.seed)).generate("e2-corpus")
    train, test = stratified_split(corpus, config.test_fraction, seed=config.seed)

    histogram = _histogram_rf_baseline(train, seed=config.seed)
    bigram = _ngram_rf_baseline(train, seed=config.seed)

    result = ExperimentResult(
        experiment_id="E2",
        title="Accuracy of opcode-pattern baselines vs obfuscation intensity "
              "(clean-trained)")
    for intensity in config.intensities:
        obfuscated_test = obfuscate_corpus(test, intensity,
                                           seed=config.seed + int(intensity * 1000))
        result.rows.append({
            "intensity": float(intensity),
            "histogram_rf_accuracy": _baseline_accuracy(*histogram, obfuscated_test),
            "ngram_rf_accuracy": _baseline_accuracy(*bigram, obfuscated_test),
        })
    clean_row = result.rows[0]
    worst_row = result.rows[-1]
    result.summary = {
        "histogram_clean": clean_row["histogram_rf_accuracy"],
        "histogram_at_max_intensity": worst_row["histogram_rf_accuracy"],
        "histogram_drop": clean_row["histogram_rf_accuracy"] - worst_row["histogram_rf_accuracy"],
        "ngram_drop": clean_row["ngram_rf_accuracy"] - worst_row["ngram_rf_accuracy"],
    }
    result.notes.append("paper claim: emerging obfuscation techniques threaten the "
                        "reliability of static opcode-pattern detection")
    return result


# --------------------------------------------------------------------------- #
# E3: GNNs vs opcode baselines under unseen obfuscation ("Table 2")


@dataclass
class E3Config:
    """Workload of the E3 robustness table."""

    num_samples: int = 240
    label_noise: float = 0.02
    test_fraction: float = 0.3
    train_augmentation_intensity: float = 0.5
    test_intensity: float = 0.6
    epochs: int = 30
    architectures: Sequence[str] = GNN_ARCHITECTURES
    seed: int = 0


def run_e3_gnn_vs_baseline(config: Optional[E3Config] = None) -> ExperimentResult:
    """E3: clean vs obfuscated accuracy of the five GNNs and the opcode baselines.

    Both detector families are hardened with the *train-time* (opcode-level)
    obfuscation passes; the test set is obfuscated with the *unseen*
    structural passes, reproducing the deployment situation the paper
    motivates (attackers adopt obfuscation the detector was not trained on).
    """
    config = config or E3Config()
    corpus = CorpusGenerator(GeneratorConfig(
        platform="evm", num_samples=config.num_samples,
        label_noise=config.label_noise, seed=config.seed)).generate("e3-corpus")
    train, test = stratified_split(corpus, config.test_fraction, seed=config.seed)
    train_mixed = _augmented_training_corpus(train, config.train_augmentation_intensity,
                                             seed=config.seed + 17)
    obfuscated_test = obfuscate_corpus(test, config.test_intensity,
                                       seed=config.seed + 23,
                                       passes=UNSEEN_TEST_PASSES)

    result = ExperimentResult(
        experiment_id="E3",
        title=f"Clean vs unseen-obfuscation accuracy (test intensity "
              f"{config.test_intensity})")

    def add_row(name: str, clean_accuracy: float, obfuscated_accuracy: float) -> None:
        result.rows.append({
            "model": name,
            "clean_accuracy": clean_accuracy,
            "obfuscated_accuracy": obfuscated_accuracy,
            "accuracy_drop": clean_accuracy - obfuscated_accuracy,
        })

    histogram = _histogram_rf_baseline(train_mixed, seed=config.seed)
    add_row("histogram+random-forest",
            _baseline_accuracy(*histogram, test),
            _baseline_accuracy(*histogram, obfuscated_test))
    bigram = _ngram_rf_baseline(train_mixed, seed=config.seed)
    add_row("2gram+random-forest",
            _baseline_accuracy(*bigram, test),
            _baseline_accuracy(*bigram, obfuscated_test))

    for architecture in config.architectures:
        pipeline = _fit_gnn(train_mixed, architecture, config.epochs, config.seed)
        add_row(f"scamdetect-{architecture}",
                pipeline.evaluate(test)["accuracy"],
                pipeline.evaluate(obfuscated_test)["accuracy"])

    gnn_drops = [row["accuracy_drop"] for row in result.rows
                 if row["model"].startswith("scamdetect-")]
    baseline_drops = [row["accuracy_drop"] for row in result.rows
                      if not row["model"].startswith("scamdetect-")]
    result.summary = {
        "mean_gnn_drop": float(np.mean(gnn_drops)),
        "mean_baseline_drop": float(np.mean(baseline_drops)),
        "best_gnn_obfuscated": float(max(row["obfuscated_accuracy"] for row in result.rows
                                         if row["model"].startswith("scamdetect-"))),
        "best_baseline_obfuscated": float(max(row["obfuscated_accuracy"]
                                              for row in result.rows
                                              if not row["model"].startswith("scamdetect-"))),
    }
    result.notes.append("paper hypothesis: GNNs over CFGs are more resilient to "
                        "obfuscation than opcode-sequence models")
    return result


# --------------------------------------------------------------------------- #
# E4: robustness curve over obfuscation intensity ("Figure 2")


@dataclass
class E4Config:
    """Workload of the E4 robustness sweep."""

    num_samples: int = 240
    label_noise: float = 0.02
    test_fraction: float = 0.3
    train_augmentation_intensity: float = 0.5
    intensities: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0)
    architecture: str = "gin"
    epochs: int = 30
    seed: int = 0


def run_e4_robustness_curve(config: Optional[E4Config] = None) -> ExperimentResult:
    """E4: accuracy vs unseen-obfuscation intensity, best GNN vs opcode baselines."""
    config = config or E4Config()
    corpus = CorpusGenerator(GeneratorConfig(
        platform="evm", num_samples=config.num_samples,
        label_noise=config.label_noise, seed=config.seed)).generate("e4-corpus")
    train, test = stratified_split(corpus, config.test_fraction, seed=config.seed)
    train_mixed = _augmented_training_corpus(train, config.train_augmentation_intensity,
                                             seed=config.seed + 17)

    histogram = _histogram_rf_baseline(train_mixed, seed=config.seed)
    bigram = _ngram_rf_baseline(train_mixed, seed=config.seed)
    pipeline = _fit_gnn(train_mixed, config.architecture, config.epochs, config.seed)

    result = ExperimentResult(
        experiment_id="E4",
        title=f"Robustness curve: scamdetect-{config.architecture} vs opcode baselines")
    for intensity in config.intensities:
        obfuscated_test = obfuscate_corpus(test, intensity,
                                           seed=config.seed + int(intensity * 1000),
                                           passes=UNSEEN_TEST_PASSES)
        result.rows.append({
            "intensity": float(intensity),
            "gnn_accuracy": pipeline.evaluate(obfuscated_test)["accuracy"],
            "histogram_rf_accuracy": _baseline_accuracy(*histogram, obfuscated_test),
            "ngram_rf_accuracy": _baseline_accuracy(*bigram, obfuscated_test),
        })
    result.summary = {
        "gnn_mean_accuracy": float(np.mean([row["gnn_accuracy"] for row in result.rows])),
        "histogram_mean_accuracy": float(np.mean([row["histogram_rf_accuracy"]
                                                  for row in result.rows])),
        "ngram_mean_accuracy": float(np.mean([row["ngram_rf_accuracy"]
                                              for row in result.rows])),
    }
    return result


# --------------------------------------------------------------------------- #
# E5: platform-agnostic detection (EVM vs WASM) ("Table 3")


@dataclass
class E5Config:
    """Workload of the E5 cross-platform comparison."""

    num_samples_per_platform: int = 200
    label_noise: float = 0.03
    test_fraction: float = 0.3
    architecture: str = "gcn"
    epochs: int = 30
    seed: int = 0


def run_e5_cross_platform(config: Optional[E5Config] = None) -> ExperimentResult:
    """E5: the same pipeline configuration evaluated on EVM and WASM corpora."""
    config = config or E5Config()
    result = ExperimentResult(
        experiment_id="E5",
        title="Platform-agnostic detection: identical pipeline on EVM and WASM corpora")

    per_platform_accuracy: Dict[str, float] = {}
    for platform in ("evm", "wasm"):
        corpus = CorpusGenerator(GeneratorConfig(
            platform=platform, num_samples=config.num_samples_per_platform,
            label_noise=config.label_noise, seed=config.seed)).generate(
                f"e5-{platform}")
        train, test = stratified_split(corpus, config.test_fraction, seed=config.seed)

        pipeline = _fit_gnn(train, config.architecture, config.epochs, config.seed)
        gnn_metrics = pipeline.evaluate(test)

        histogram = _histogram_rf_baseline(train, seed=config.seed)
        baseline_metrics = _baseline_metrics(*histogram, test)

        per_platform_accuracy[platform] = gnn_metrics["accuracy"]
        result.rows.append({
            "platform": platform,
            "model": f"scamdetect-{config.architecture}",
            "accuracy": gnn_metrics["accuracy"],
            "f1": gnn_metrics["f1"],
            "roc_auc": gnn_metrics["roc_auc"],
        })
        result.rows.append({
            "platform": platform,
            "model": "histogram+random-forest",
            "accuracy": baseline_metrics["accuracy"],
            "f1": baseline_metrics["f1"],
            "roc_auc": baseline_metrics["roc_auc"],
        })

    result.summary = {
        "evm_gnn_accuracy": per_platform_accuracy.get("evm", float("nan")),
        "wasm_gnn_accuracy": per_platform_accuracy.get("wasm", float("nan")),
        "cross_platform_gap": abs(per_platform_accuracy.get("evm", 0.0)
                                  - per_platform_accuracy.get("wasm", 0.0)),
    }
    result.notes.append("paper goal: consistent detection performance across "
                        "heterogeneous runtimes")
    return result


# --------------------------------------------------------------------------- #
# E6: minimal-proxy dedup ablation ("Table 4")


@dataclass
class E6Config:
    """Workload of the E6 dedup ablation."""

    num_samples: int = 240
    proxy_duplicate_fraction: float = 0.5
    label_noise: float = 0.03
    test_fraction: float = 0.3
    seed: int = 0


def run_e6_dedup_ablation(config: Optional[E6Config] = None) -> ExperimentResult:
    """E6: accuracy inflation when ERC-1167 proxy duplicates are not removed."""
    config = config or E6Config()
    corpus = CorpusGenerator(GeneratorConfig(
        platform="evm", num_samples=config.num_samples,
        proxy_duplicate_fraction=config.proxy_duplicate_fraction,
        label_noise=config.label_noise, seed=config.seed)).generate("e6-corpus")

    result = ExperimentResult(
        experiment_id="E6",
        title="Corpus curation: effect of ERC-1167 minimal-proxy deduplication")

    def evaluate(name: str, working_corpus: Corpus) -> Dict[str, object]:
        train, test = stratified_split(working_corpus, config.test_fraction,
                                       seed=config.seed)
        extractor, classifier = _histogram_rf_baseline(train, seed=config.seed)
        return {
            "setting": name,
            "corpus_size": len(working_corpus),
            "proxy_samples": sum(1 for s in working_corpus if s.is_proxy_duplicate),
            "accuracy": _baseline_accuracy(extractor, classifier, test),
        }

    result.rows.append(evaluate("raw (proxies kept)", corpus))
    deduplicated, stats = deduplicate(corpus)
    row = evaluate("deduplicated", deduplicated)
    row["proxy_samples"] = stats["proxy"]
    result.rows.append(row)

    result.summary = {
        "accuracy_inflation": float(result.rows[0]["accuracy"]) - float(result.rows[1]["accuracy"]),
        "duplicates_removed": float(stats["proxy"] + stats["exact"]),
    }
    result.notes.append("paper plan: remove duplicates (e.g. minimal proxies) from the "
                        "expanded dataset to ensure diversity")
    return result


# --------------------------------------------------------------------------- #
# E7: GNN design ablation ("Figure 3")


@dataclass
class E7Config:
    """Workload of the E7 architecture ablation."""

    num_samples: int = 200
    label_noise: float = 0.02
    test_fraction: float = 0.3
    architecture: str = "gcn"
    epochs: int = 25
    depths: Sequence[int] = (1, 2, 3)
    readouts: Sequence[str] = ("mean", "sum", "max")
    seed: int = 0


def run_e7_gnn_ablation(config: Optional[E7Config] = None) -> ExperimentResult:
    """E7: ablation over depth, readout and node-feature design of the GNN."""
    config = config or E7Config()
    corpus = CorpusGenerator(GeneratorConfig(
        platform="evm", num_samples=config.num_samples,
        label_noise=config.label_noise, seed=config.seed)).generate("e7-corpus")
    train, test = stratified_split(corpus, config.test_fraction, seed=config.seed)
    # the ablation is scored on unseen-obfuscation robustness as well as clean
    # accuracy so feature/readout choices that only matter under attack show up
    obfuscated_test = obfuscate_corpus(test, 0.5, seed=config.seed + 5,
                                       passes=UNSEEN_TEST_PASSES)

    result = ExperimentResult(
        experiment_id="E7",
        title="GNN design ablation: depth, readout and node features")

    def add(variant: str, **overrides) -> None:
        pipeline = _fit_gnn(train, config.architecture, config.epochs, config.seed,
                            **overrides)
        result.rows.append({
            "variant": variant,
            "clean_accuracy": pipeline.evaluate(test)["accuracy"],
            "obfuscated_accuracy": pipeline.evaluate(obfuscated_test)["accuracy"],
        })

    for depth in config.depths:
        add(f"depth={depth}", num_layers=depth)
    for readout_kind in config.readouts:
        add(f"readout={readout_kind}", readout=readout_kind)
    add("features=no-markers", include_markers=False)
    add("features=fraction-histogram", node_feature_mode="fraction",
        include_markers=False)
    add("features=no-structural", include_structural=False)

    best = max(result.rows, key=lambda row: row["obfuscated_accuracy"])
    result.summary = {
        "best_variant_obfuscated_accuracy": float(best["obfuscated_accuracy"]),
        "num_variants": float(len(result.rows)),
    }
    result.notes.append(f"best variant under obfuscation: {best['variant']}")
    return result


# --------------------------------------------------------------------------- #
# E8: batch scanning service throughput


@dataclass
class E8Config:
    """Workload of the E8 scan-throughput experiment.

    The corpus is scanned three ways with the *same* trained detector:
    a sequential ``scan`` loop (the pre-service baseline), a cold batch scan
    that fills the graph cache, and a warm batch scan served from it.
    """

    num_samples: int = 120
    epochs: int = 6
    num_layers: int = 1
    hidden_features: int = 16
    cache_capacity: int = 4096
    max_workers: Optional[int] = None
    seed: int = 0


def run_e8_scan_throughput(config: Optional[E8Config] = None) -> ExperimentResult:
    """E8: cold vs warm batch-scan throughput and verdict fidelity.

    Measures the service layer introduced for deployment-gate workloads:
    repeated scans of the same bytecode should be served from the
    content-addressed graph cache at a large multiple of cold throughput,
    while every batch verdict stays bit-identical to the single-sample
    :meth:`ScamDetector.scan` path.
    """
    import time

    from repro.core.detector import ScamDetector
    from repro.service import BatchScanner, GraphCache

    config = config or E8Config()
    corpus = CorpusGenerator(GeneratorConfig(
        platform="evm", num_samples=config.num_samples,
        label_noise=0.0, seed=config.seed)).generate("e8-corpus")
    detector = ScamDetector(
        ScamDetectConfig(epochs=config.epochs, num_layers=config.num_layers,
                         hidden_features=config.hidden_features,
                         seed=config.seed),
        explain=False)
    detector.train(corpus)
    codes = [sample.bytecode for sample in corpus]
    ids = [sample.sample_id for sample in corpus]

    # sequential baseline: one scan() call per contract, no cache
    started = time.perf_counter()
    sequential = [detector.scan(code, sample_id=sample_id)
                  for code, sample_id in zip(codes, ids)]
    sequential_seconds = time.perf_counter() - started

    cache = GraphCache.for_config(detector.config,
                                  capacity=config.cache_capacity)
    scanner = BatchScanner(detector, cache=cache,
                           max_workers=config.max_workers)
    cold = scanner.scan_codes(codes, sample_ids=ids)
    warm = scanner.scan_codes(codes, sample_ids=ids)

    mismatches = sum(
        1 for single, batch in zip(sequential, warm.reports)
        if single.to_dict() != batch.to_dict())

    def row(mode: str, seconds: float, hit_rate: float) -> Dict[str, object]:
        return {"mode": mode, "contracts": len(codes), "seconds": seconds,
                "contracts_per_second": len(codes) / seconds if seconds else 0.0,
                "cache_hit_rate": hit_rate}

    result = ExperimentResult(
        experiment_id="E8",
        title="Batch scanning service: cold vs cached corpus re-scan")
    result.rows = [
        row("sequential-scan", sequential_seconds, 0.0),
        row("batch-cold", cold.elapsed_seconds, cold.cache_stats.hit_rate),
        row("batch-warm", warm.elapsed_seconds, warm.cache_stats.hit_rate),
    ]
    result.summary = {
        "cold_seconds": cold.elapsed_seconds,
        "warm_seconds": warm.elapsed_seconds,
        "warm_speedup": (cold.elapsed_seconds / warm.elapsed_seconds
                         if warm.elapsed_seconds else float("inf")),
        "warm_hit_rate": warm.cache_stats.hit_rate,
        "verdict_mismatches": float(mismatches),
    }
    result.notes.append(
        "warm batch verdicts are compared field-by-field against sequential "
        "ScamDetector.scan verdicts; mismatches must be zero")
    return result


# --------------------------------------------------------------------------- #
# E9: vectorized batched-graph engine throughput


@dataclass
class E9Config:
    """Workload of the E9 batched-engine throughput experiment.

    One model per engine is trained on the E5-style EVM corpus (identical
    seeds, so both engines perform the same optimizer trajectory), then the
    batched-engine model scores the full EVM + WASM corpora with both
    inference paths.  ``epochs``/``batch_size`` mirror the trainer defaults
    the service and experiments actually use.
    """

    num_samples_per_platform: int = 200
    label_noise: float = 0.03
    test_fraction: float = 0.3
    architecture: str = "gcn"
    epochs: int = 6
    batch_size: int = 16
    hidden_features: int = 32
    num_layers: int = 2
    train_repeats: int = 2
    inference_repeats: int = 3
    seed: int = 0


def run_e9_gnn_throughput(config: Optional[E9Config] = None) -> ExperimentResult:
    """E9: per-graph vs batched GNN training and inference throughput.

    Measures the vectorized batched-graph engine against the per-graph
    oracle it replaced: training epochs/second over mini-batches of
    ``batch_size`` graphs, inference graphs/second over the E5 corpora, and
    prediction parity (argmax mismatches between the two inference paths,
    which must be zero).
    """
    import time

    from repro.gnn.data import corpus_to_graphs
    from repro.gnn.model import GraphClassifier
    from repro.gnn.training import GNNTrainer

    config = config or E9Config()

    graphs_by_platform = {}
    for platform in ("evm", "wasm"):
        corpus = CorpusGenerator(GeneratorConfig(
            platform=platform, num_samples=config.num_samples_per_platform,
            label_noise=config.label_noise, seed=config.seed)).generate(
                f"e5-{platform}")
        graphs_by_platform[platform] = corpus_to_graphs(corpus)
    train_graphs = graphs_by_platform["evm"][
        :int(config.num_samples_per_platform * (1.0 - config.test_fraction))]
    all_graphs = graphs_by_platform["evm"] + graphs_by_platform["wasm"]
    feature_dim = all_graphs[0].feature_dim

    def make_trainer(vectorized: bool, epochs: int) -> GNNTrainer:
        model = GraphClassifier(architecture=config.architecture,
                                in_features=feature_dim,
                                hidden_features=config.hidden_features,
                                num_layers=config.num_layers,
                                seed=config.seed)
        return GNNTrainer(model, epochs=epochs,
                          batch_size=config.batch_size, seed=config.seed,
                          vectorized=vectorized)

    # warm-up: one throwaway epoch per engine populates the lazy per-graph
    # operator caches (CSR forms, aggregators) and the BLAS/scipy kernels,
    # so the timed runs below measure steady-state engine throughput
    for vectorized in (False, True):
        make_trainer(vectorized, epochs=1).fit(train_graphs)

    # -- training: identical workload, per-graph loop vs batched engine ---- #
    # best-of-repeats on fresh trainers isolates engine throughput from
    # scheduler noise; both engines run the same trajectory every repeat
    timings: Dict[str, float] = {}
    trainers: Dict[str, GNNTrainer] = {}
    for mode, vectorized in (("per-graph", False), ("batched", True)):
        best = float("inf")
        for _ in range(max(1, config.train_repeats)):
            trainer = make_trainer(vectorized, epochs=config.epochs)
            started = time.perf_counter()
            trainer.fit(train_graphs)
            best = min(best, time.perf_counter() - started)
        timings[mode] = best
        trainers[mode] = trainer

    # -- inference: the batched-engine model scored through both paths ----- #
    scorer = trainers["batched"]
    inference: Dict[str, float] = {}
    probabilities: Dict[str, np.ndarray] = {}
    for mode, vectorized in (("per-graph", False), ("batched", True)):
        scorer.vectorized = vectorized
        best = float("inf")
        for _ in range(max(1, config.inference_repeats)):
            started = time.perf_counter()
            probabilities[mode] = scorer.predict_proba(all_graphs)
            best = min(best, time.perf_counter() - started)
        inference[mode] = best
    scorer.vectorized = True
    mismatches = int(np.sum(np.argmax(probabilities["batched"], axis=1)
                            != np.argmax(probabilities["per-graph"], axis=1)))

    result = ExperimentResult(
        experiment_id="E9",
        title=f"Batched-graph engine throughput vs per-graph oracle "
              f"({config.architecture}, batch_size={config.batch_size})")
    for mode in ("per-graph", "batched"):
        result.rows.append({
            "mode": mode,
            "train_seconds": timings[mode],
            "train_epochs_per_second": config.epochs / timings[mode],
            "infer_seconds": inference[mode],
            "infer_graphs_per_second": len(all_graphs) / inference[mode],
        })
    result.summary = {
        "train_speedup": timings["per-graph"] / timings["batched"],
        "inference_speedup": inference["per-graph"] / inference["batched"],
        "train_graphs": float(len(train_graphs)),
        "inference_graphs": float(len(all_graphs)),
        "prediction_mismatches": float(mismatches),
        "max_probability_delta": float(np.abs(probabilities["batched"]
                                              - probabilities["per-graph"]).max()),
    }
    result.notes.append(
        "identical seeds/shuffling/dropout streams: both engines walk the "
        "same optimizer trajectory, so the speedup is pure execution "
        "efficiency, not a different training run")
    return result


# --------------------------------------------------------------------------- #
# E10: multi-process sharded scan throughput


def available_cores() -> int:
    """CPU cores this process may actually use (affinity-aware)."""
    import os

    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


@dataclass
class E10Config:
    """Workload of the E10 sharded-scan throughput experiment.

    One corpus is cold-scanned by the single-process :class:`BatchScanner`
    (the verdict oracle), by a 1-shard pool (the sharding-overhead
    baseline) and by a ``shards``-shard pool; a final warm re-scan on a
    fresh pool exercises the cross-process shared disk cache tier.  Pools
    are started *before* their timing window, so the measurement is scan
    throughput, not replica-load time.
    """

    # 240 contracts keep per-shard compute well above the pool's IPC and
    # merge overhead, so the >= 2x scaling floor measures lowering
    # parallelism rather than dispatch cost on small corpora
    num_samples: int = 240
    epochs: int = 6
    num_layers: int = 1
    hidden_features: int = 16
    shards: int = 4
    chunk_size: int = 8
    repeats: int = 2
    seed: int = 0


def run_e10_sharded_throughput(config: Optional[E10Config] = None) -> ExperimentResult:
    """E10: multi-process sharded scanning -- throughput scaling + parity.

    The acceptance claim is that on a machine with >= ``shards`` usable
    cores a cold sharded scan is at least 2x faster than the 1-shard pool,
    with **zero** verdict mismatches against the single-process oracle.
    Speedup is hardware-bound (a 1-core container cannot parallelise
    CPU-bound lowering, whatever the software does), so the measured
    ``available_cores`` is part of the result and the benchmark gate scales
    its floor accordingly; parity is asserted unconditionally.
    """
    import tempfile
    import time

    from repro.core.detector import ScamDetector
    from repro.service import BatchScanner, ShardedScanner

    config = config or E10Config()
    corpus = CorpusGenerator(GeneratorConfig(
        platform="evm", num_samples=config.num_samples,
        label_noise=0.0, seed=config.seed)).generate("e10-corpus")
    detector = ScamDetector(
        ScamDetectConfig(epochs=config.epochs, num_layers=config.num_layers,
                         hidden_features=config.hidden_features,
                         seed=config.seed),
        explain=False)
    detector.train(corpus)
    codes = [sample.bytecode for sample in corpus]
    ids = [sample.sample_id for sample in corpus]

    repeats = max(1, config.repeats)

    # single-process oracle (no cache): the verdicts every sharded run
    # must reproduce byte-for-byte
    oracle_scanner = BatchScanner(detector, max_workers=1)
    single_seconds = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        oracle = oracle_scanner.scan_codes(codes, sample_ids=ids)
        single_seconds = min(single_seconds, time.perf_counter() - started)

    def sharded_scan(shards: int, cache_dir=None, scan_repeats: int = repeats):
        # best-of-repeats on a FRESH pool each time: workers hold in-memory
        # caches, so re-scanning one pool would silently turn a cold
        # measurement warm.  Pools start before the timing window, so
        # replica-load cost never pollutes throughput.
        best = float("inf")
        for _ in range(scan_repeats):
            with ShardedScanner(detector, shards=shards,
                                chunk_size=config.chunk_size,
                                cache_dir=cache_dir) as scanner:
                scanner.start()
                started = time.perf_counter()
                result = scanner.scan_codes(codes, sample_ids=ids)
                best = min(best, time.perf_counter() - started)
        return result, best

    one_result, one_seconds = sharded_scan(1)
    many_result, many_seconds = sharded_scan(config.shards)
    with tempfile.TemporaryDirectory(prefix="e10-cache-") as cache_dir:
        # fill the shared disk tier with one pool, then re-scan with
        # *fresh* pools: every warm hit crosses a process boundary
        sharded_scan(config.shards, cache_dir=cache_dir, scan_repeats=1)
        warm_result, warm_seconds = sharded_scan(config.shards,
                                                 cache_dir=cache_dir)

    def mismatches(result) -> int:
        return sum(1 for single, sharded in zip(oracle.reports, result.reports)
                   if single.to_dict() != sharded.to_dict())

    total_mismatches = (mismatches(one_result) + mismatches(many_result)
                        + mismatches(warm_result))

    def row(mode: str, seconds: float, result) -> Dict[str, object]:
        return {"mode": mode, "contracts": len(codes), "seconds": seconds,
                "contracts_per_second": (len(codes) / seconds
                                         if seconds else 0.0),
                "cache_hit_rate": result.cache_stats.hit_rate}

    result = ExperimentResult(
        experiment_id="E10",
        title=f"Sharded scan engine: process-pool scaling at "
              f"{config.shards} shards ({available_cores()} usable cores)")
    result.rows = [
        row("single-process", single_seconds, oracle),
        row("sharded-1", one_seconds, one_result),
        row(f"sharded-{config.shards}", many_seconds, many_result),
        row(f"sharded-{config.shards}-warm", warm_seconds, warm_result),
    ]
    result.summary = {
        "sharded_speedup": one_seconds / many_seconds if many_seconds else 0.0,
        # deliberately NOT named *_speedup: whether warm disk-tier reads beat
        # fresh lowering of small contracts depends on disk/page-cache state,
        # so this ratio is telemetry, not a gated throughput contract (the
        # gated warm contract is hit_rate == 1.0 + verdict parity)
        "warm_vs_cold_ratio": (many_seconds / warm_seconds
                               if warm_seconds else 0.0),
        "warm_hit_rate": warm_result.cache_stats.hit_rate,
        "verdict_mismatches": float(total_mismatches),
        "available_cores": float(available_cores()),
        "shards": float(config.shards),
    }
    result.notes.append(
        "all sharded verdicts are compared field-by-field against the "
        "single-process BatchScanner oracle; mismatches must be zero")
    result.notes.append(
        "sharded_speedup is CPU-bound: expect >= 2x only with >= "
        f"{config.shards} usable cores (this run saw "
        f"{available_cores()})")
    return result


# --------------------------------------------------------------------------- #
# E11: continuous watch ingest vs warm re-ingest (verdict registry)


@dataclass
class E11Config:
    """Workload of the E11 watch-daemon ingest experiment.

    A corpus is written out as a directory of ``.bin`` files and ingested by
    a :class:`~repro.registry.watch.WatchDaemon` three ways: a **cold**
    first poll (every contract lowered and scored), a **warm** second poll
    on the live daemon (the stat short-circuit: nothing is even re-read),
    and a **restart** poll from a fresh daemon with every file's mtime
    bumped, defeating the stat index so every contract is re-read and
    re-hashed -- and every verdict answered from SQLite, still with zero
    inference.
    """

    # same 240-contract scale as E10, so the service benches stay comparable
    num_samples: int = 240
    epochs: int = 6
    num_layers: int = 1
    hidden_features: int = 16
    seed: int = 0


def run_e11_watch_ingest(config: Optional[E11Config] = None) -> ExperimentResult:
    """E11: cold watch ingest vs warm re-ingest of an unchanged corpus.

    The acceptance claims: a warm poll cycle over an unchanged corpus is at
    least 20x faster than the cold ingest and performs **zero** GNN
    inference calls (so does a daemon-restart poll), and the verdicts the
    registry hands back are byte-identical to a direct ``scan-batch`` over
    the same directory.
    """
    import pathlib
    import tempfile
    import time

    from repro.core.detector import ScamDetector
    from repro.registry import ScanRegistry, WatchDaemon

    config = config or E11Config()
    corpus = CorpusGenerator(GeneratorConfig(
        platform="evm", num_samples=config.num_samples,
        label_noise=0.0, seed=config.seed)).generate("e11-corpus")
    detector = ScamDetector(
        ScamDetectConfig(epochs=config.epochs, num_layers=config.num_layers,
                         hidden_features=config.hidden_features,
                         seed=config.seed),
        explain=False)
    detector.train(corpus)

    with tempfile.TemporaryDirectory(prefix="e11-watch-") as tmp:
        feed = pathlib.Path(tmp) / "feed"
        feed.mkdir()
        for sample in corpus:
            (feed / f"{sample.sample_id}.bin").write_bytes(sample.bytecode)
        registry_path = pathlib.Path(tmp) / "verdicts.db"

        # the stateless oracle every registry verdict must reproduce
        oracle = detector.scan_directory(feed)

        with ScanRegistry.for_config(registry_path, detector.config) as registry:
            with WatchDaemon(detector, registry, feed) as daemon:
                started = time.perf_counter()
                cold = daemon.poll_once()
                cold_seconds = time.perf_counter() - started
                started = time.perf_counter()
                warm = daemon.poll_once()
                warm_seconds = time.perf_counter() - started
            rows = {row.source_path: row
                    for row in registry.query(limit=None)}

        # a fresh daemon on a fresh registry handle: the only state that
        # survives is the SQLite file itself.  Bumping every mtime defeats
        # the stat index, so this measures the re-hash + registry-hit path
        # (the worst honest restart: files touched but content unchanged).
        import os

        for path in feed.iterdir():
            stat = path.stat()
            os.utime(path, ns=(stat.st_atime_ns,
                               stat.st_mtime_ns + 1_000_000))
        with ScanRegistry.for_config(registry_path, detector.config) as registry:
            with WatchDaemon(detector, registry, feed) as daemon:
                started = time.perf_counter()
                restart = daemon.poll_once()
                restart_seconds = time.perf_counter() - started

        mismatches = sum(
            1 for report in oracle.reports
            if rows[report.sample_id].to_report().to_dict()
            != report.to_dict())

    def row(mode: str, seconds: float, stats) -> Dict[str, object]:
        return {"mode": mode, "contracts": config.num_samples,
                "seconds": seconds,
                "contracts_per_second": (config.num_samples / seconds
                                         if seconds else 0.0),
                "inference_calls": stats.inference_calls,
                "scanned": stats.scanned,
                "registry_hits": stats.registry_hits}

    result = ExperimentResult(
        experiment_id="E11",
        title="Watch-daemon ingest: cold corpus vs warm (unchanged) re-poll")
    result.rows = [
        row("watch-cold", cold_seconds, cold),
        row("watch-warm", warm_seconds, warm),
        row("watch-restart", restart_seconds, restart),
    ]
    result.summary = {
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_speedup": (cold_seconds / warm_seconds
                         if warm_seconds else float("inf")),
        "warm_inference_calls": float(warm.inference_calls),
        "restart_inference_calls": float(restart.inference_calls),
        "registry_rows": float(len(rows)),
        "verdict_mismatches": float(mismatches),
    }
    result.notes.append(
        "registry verdicts are compared field-by-field against a direct "
        "scan_directory over the same corpus; mismatches must be zero")
    result.notes.append(
        "warm polls must perform zero GNN inference calls: unchanged files "
        "are stat-skipped, restarted daemons answer from the registry")
    return result


# --------------------------------------------------------------------------- #
# E12: two-stage cascade scoring vs GNN-only scanning


@dataclass
class E12Config:
    """Workload of the E12 cascade-throughput experiment.

    A mostly-benign corpus (the realistic submission-feed mix: 75% benign)
    is cold-scanned twice by the same trained detector -- once GNN-only and
    once with the tier-0 calibrated n-gram pre-filter enabled -- and the
    two verdict streams are compared contract-by-contract.
    """

    # same 240-contract scale as E10/E11, but 75% benign: the cascade's
    # value proposition is exactly the confident-benign majority
    num_samples: int = 240
    malicious_fraction: float = 0.25
    epochs: int = 6
    num_layers: int = 1
    hidden_features: int = 16
    repeats: int = 2
    seed: int = 0


def run_e12_cascade_throughput(config: Optional[E12Config] = None) -> ExperimentResult:
    """E12: cascade pre-filter throughput at equal recall.

    The acceptance claims: on a 75%-benign corpus, a cold ``--cascade``
    scan is at least 3x faster than the cold GNN-only scan of the same
    corpus, it flags **exactly the same contracts** malicious (equal
    recall -- zero label disagreements), and every escalated contract is
    GNN-scored exactly once (inference calls == escalations).
    """
    import time

    from repro.core.detector import ScamDetector
    from repro.service import BatchScanner

    config = config or E12Config()
    corpus = CorpusGenerator(GeneratorConfig(
        platform="evm", num_samples=config.num_samples,
        malicious_fraction=config.malicious_fraction,
        label_noise=0.0, seed=config.seed)).generate("e12-corpus")
    detector = ScamDetector(
        ScamDetectConfig(epochs=config.epochs, num_layers=config.num_layers,
                         hidden_features=config.hidden_features,
                         seed=config.seed),
        explain=False)
    detector.train(corpus, cascade=True)
    codes = [sample.bytecode for sample in corpus]
    ids = [sample.sample_id for sample in corpus]

    repeats = max(1, config.repeats)

    def timed_scan(cascade: bool):
        # toggling the flag on one detector keeps weights, thresholds and
        # the trained head bit-identical between the two modes; no cache is
        # attached, so every repeat is a cold scan and best-of-repeats
        # measures steady-state code paths, not page-cache luck
        detector.cascade = cascade
        scanner = BatchScanner(detector, max_workers=1)
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            result = scanner.scan_codes(codes, sample_ids=ids)
            best = min(best, time.perf_counter() - started)
        scanner.close()
        return result, best

    gnn_result, gnn_seconds = timed_scan(cascade=False)
    cascade_result, cascade_seconds = timed_scan(cascade=True)
    detector.cascade = False

    disagreements = sum(
        1 for gnn, two_stage in zip(gnn_result.reports,
                                    cascade_result.reports)
        if gnn.label != two_stage.label)
    stats = cascade_result.cascade_stats or {}
    inference_calls = sum(count * size for size, count
                          in cascade_result.batch_sizes.items())

    def row(mode: str, seconds: float, result) -> Dict[str, object]:
        entry = {"mode": mode, "contracts": len(codes), "seconds": seconds,
                 "contracts_per_second": (len(codes) / seconds
                                          if seconds else 0.0),
                 "malicious": result.num_malicious}
        if result.cascade_stats is not None:
            entry["short_circuits"] = result.cascade_stats["short_circuits"]
            entry["escalations"] = result.cascade_stats["escalations"]
        return entry

    result = ExperimentResult(
        experiment_id="E12",
        title=f"Two-stage cascade scoring: pre-filter short-circuit on a "
              f"{1 - config.malicious_fraction:.0%}-benign corpus")
    result.rows = [
        row("gnn-only", gnn_seconds, gnn_result),
        row("cascade", cascade_seconds, cascade_result),
    ]
    result.summary = {
        "cascade_speedup": (gnn_seconds / cascade_seconds
                            if cascade_seconds else 0.0),
        "cascade_disagreements": float(disagreements),
        "runtime_near_miss_disagreements": float(
            stats.get("disagreements", 0)),
        "short_circuits": float(stats.get("short_circuits", 0)),
        "escalations": float(stats.get("escalations", 0)),
        # named to end in "inference_calls" so the regression gate treats
        # it as an exact fidelity counter: any rise above zero means a
        # short-circuited or already-scored contract hit the GNN again
        "excess_inference_calls": float(
            inference_calls - stats.get("escalations", 0)),
        "benign_fraction": 1.0 - config.malicious_fraction,
        "available_cores": float(available_cores()),
    }
    result.notes.append(
        "cascade_disagreements counts label differences between the "
        "GNN-only and cascade verdict streams; equal recall means zero")
    result.notes.append(
        "excess_inference_calls (inference calls minus escalations) proves "
        "every escalated contract is GNN-scored exactly once (and "
        "short-circuited ones never)")
    return result


# --------------------------------------------------------------------------- #
# E13: chaos campaign -- correctness and availability under injected faults


@dataclass
class E13Config:
    """Workload of the E13 chaos-resilience experiment.

    One 240-contract corpus is scanned under six fault classes, each armed
    through the deterministic :mod:`repro.resilience` injector: worker
    crashes mid-batch, repeated crashes that quarantine a shard, corrupted
    disk-cache entries, SQLITE_BUSY registry writes, a dead webhook
    endpoint, and a slow/transiently-failing scan server.  Every scenario's
    verdicts are compared field-by-field against a fault-free
    single-process oracle.
    """

    # same 240-contract scale as E10/E11, so the service benches compare
    num_samples: int = 240
    epochs: int = 6
    num_layers: int = 1
    hidden_features: int = 16
    shards: int = 2
    chunk_size: int = 8
    # single-contract server requests under the slow-server fault class
    server_requests: int = 48
    seed: int = 0
    #: seed of every FaultPlan (CI sweeps it weekly); the zero-wrong-verdict
    #: and availability claims must hold for EVERY value
    chaos_seed: int = 0


def run_e13_chaos_resilience(
        config: Optional[E13Config] = None) -> ExperimentResult:
    """E13: zero wrong/lost verdicts + bounded availability under chaos.

    The acceptance claims, per fault class: (1) **zero** verdict
    mismatches against the fault-free oracle -- retries, requeues and
    cache-recovery may cost time but never correctness; (2) **zero** lost
    or silently-dropped verdicts/alerts (a webhook that stays dead is
    dead-lettered, never discarded); (3) availability stays 1.0 -- every
    scan request is eventually answered, including during shard quarantine
    (degraded mode) and injected 503 bursts (client retry honoring
    ``Retry-After``).  All claims must hold for every ``chaos_seed``.
    """
    import json
    import pathlib
    import tempfile
    import time
    import warnings as _warnings

    from repro.core.detector import ScamDetector
    from repro.registry import ScanRegistry
    from repro.registry.rules import RulesEngine, TriageRule
    from repro.registry.store import content_sha256
    from repro.resilience import (
        FaultPlan,
        FaultSpec,
        active_injector,
        fault_plan,
    )
    from repro.service import (
        BatchScanner,
        GraphCache,
        ScanServer,
        ServerClient,
        ServerClientError,
        ShardedScanner,
    )

    config = config or E13Config()
    corpus = CorpusGenerator(GeneratorConfig(
        platform="evm", num_samples=config.num_samples,
        label_noise=0.0, seed=config.seed)).generate("e13-corpus")
    detector = ScamDetector(
        ScamDetectConfig(epochs=config.epochs, num_layers=config.num_layers,
                         hidden_features=config.hidden_features,
                         seed=config.seed),
        explain=False)
    detector.train(corpus)
    codes = [sample.bytecode for sample in corpus]
    ids = [sample.sample_id for sample in corpus]

    # fault-free oracle: the verdicts every chaos scenario must reproduce
    oracle = BatchScanner(detector, max_workers=1).scan_codes(
        codes, sample_ids=ids)
    oracle_dicts = [report.to_dict() for report in oracle.reports]

    def mismatches(reports) -> int:
        """Field-by-field disagreements (a missing report is a mismatch)."""
        wrong = sum(
            1 for want, got in zip(oracle_dicts, reports)
            if want != (got.to_dict() if hasattr(got, "to_dict") else got))
        return wrong + abs(len(oracle_dicts) - len(reports))

    rows = []
    telemetry: Dict[str, float] = {
        "faults_injected": 0.0, "worker_restarts": 0.0,
        "quarantined_shards": 0.0, "registry_write_retries": 0.0,
        "webhook_dead_lettered": 0.0, "client_retries": 0.0,
        "degraded_mode_mismatches": 0.0, "lost_verdict_mismatches": 0.0,
        "lost_alert_mismatches": 0.0,
    }

    def record(mode: str, contracts: int, seconds: float,
               availability: float, wrong: int) -> None:
        rows.append({
            "mode": mode, "contracts": contracts, "seconds": seconds,
            "contracts_per_second": (contracts / seconds if seconds
                                     else 0.0),
            "availability": availability,
            "verdict_mismatches": float(wrong),
        })

    def finish(mode: str, started: float, availability: float,
               wrong: int, contracts: Optional[int] = None) -> None:
        telemetry["faults_injected"] += float(
            active_injector().fired_total())
        record(mode, len(codes) if contracts is None else contracts,
               time.perf_counter() - started, availability, wrong)

    # -- worker-crash: two mid-batch deaths; respawn + requeue, no loss --
    with fault_plan(FaultPlan(specs=(
            FaultSpec(site="shard.worker.*", kind="crash",
                      after=2, max_fires=2),),
            seed=config.chaos_seed)), \
            _warnings.catch_warnings():
        _warnings.simplefilter("ignore")
        started = time.perf_counter()
        with ShardedScanner(detector, shards=config.shards,
                            chunk_size=config.chunk_size) as scanner:
            scanner.start()
            result = scanner.scan_codes(codes, sample_ids=ids)
            telemetry["worker_restarts"] += float(scanner.restarts)
        finish("worker-crash", started,
               len(result.reports) / len(codes), mismatches(result.reports))

    # -- shard-quarantine: shard 0 dies past max_restarts; its hash space
    # rebalances onto healthy shards and the batch completes degraded --
    with fault_plan(FaultPlan(specs=(
            FaultSpec(site="shard.worker.0", kind="crash", max_fires=2),),
            seed=config.chaos_seed)), \
            _warnings.catch_warnings():
        _warnings.simplefilter("ignore")
        started = time.perf_counter()
        with ShardedScanner(detector, shards=config.shards,
                            chunk_size=config.chunk_size,
                            max_restarts=1,
                            restart_backoff_s=0.02) as scanner:
            scanner.start()
            result = scanner.scan_codes(codes, sample_ids=ids)
            telemetry["worker_restarts"] += float(scanner.restarts)
            telemetry["quarantined_shards"] += float(
                len(scanner.quarantined_shards))
            if not (scanner.degraded
                    and scanner.quarantined_shards == [0]):
                telemetry["degraded_mode_mismatches"] += 1.0
        finish("shard-quarantine", started,
               len(result.reports) / len(codes), mismatches(result.reports))

    # -- cache-corrupt: scribbled .npz disk entries are detected, dropped
    # and re-lowered; corruption can never flip a verdict --
    with tempfile.TemporaryDirectory(prefix="e13-cache-") as cache_dir:
        cache = GraphCache(detector.config.graph_fingerprint(),
                           disk_dir=cache_dir)
        BatchScanner(detector, cache=cache,
                     max_workers=1).scan_codes(codes, sample_ids=ids)
        with fault_plan(FaultPlan(specs=(
                FaultSpec(site="cache.disk_read", kind="corrupt",
                          probability=0.4),),
                seed=config.chaos_seed)), \
                _warnings.catch_warnings():
            _warnings.simplefilter("ignore")
            started = time.perf_counter()
            # fresh memory tier: every lookup goes through the disk tier
            cold = GraphCache(detector.config.graph_fingerprint(),
                              disk_dir=cache_dir)
            result = BatchScanner(detector, cache=cold,
                                  max_workers=1).scan_codes(
                codes, sample_ids=ids)
            finish("cache-corrupt", started,
                   len(result.reports) / len(codes),
                   mismatches(result.reports))

    # -- registry-busy: SQLITE_BUSY on the write path is retried under
    # backoff; every verdict still lands durably --
    with tempfile.TemporaryDirectory(prefix="e13-registry-") as tmp:
        registry = ScanRegistry.for_config(
            pathlib.Path(tmp) / "verdicts.sqlite", detector.config)
        with fault_plan(FaultPlan(specs=(
                FaultSpec(site="registry.write", kind="exception",
                          exception="sqlite_busy", max_fires=3),),
                seed=config.chaos_seed)), \
                _warnings.catch_warnings():
            _warnings.simplefilter("ignore")
            started = time.perf_counter()
            result = BatchScanner(detector, max_workers=1,
                                  registry=registry).scan_codes(
                codes, sample_ids=ids)
            telemetry["registry_write_retries"] += float(
                active_injector().fired_total())
            recorded = registry.counts()["verdicts"]
            unique = len({content_sha256(raw) for raw in codes})
            telemetry["lost_verdict_mismatches"] += float(
                max(0, unique - recorded))
            finish("registry-busy", started,
                   len(result.reports) / len(codes),
                   mismatches(result.reports))
        registry.close()

    # -- webhook-down: every POST fails; exhausted deliveries land in the
    # dead-letter JSONL instead of vanishing --
    with tempfile.TemporaryDirectory(prefix="e13-webhook-") as tmp:
        dead_letter = pathlib.Path(tmp) / "dead-letter.jsonl"
        rule = TriageRule(name="page-on-malicious", verdict="malicious",
                          alert=True,
                          webhook="http://127.0.0.1:9/chaos-hook")
        from repro.resilience import RetryPolicy

        # the production backoff schedule, compressed so the experiment's
        # ~120 exhausted deliveries don't sleep for half a minute
        engine = RulesEngine([rule],
                             alert_path=pathlib.Path(tmp) / "alerts.jsonl",
                             dead_letter_path=dead_letter,
                             retry=RetryPolicy(max_attempts=3,
                                               base_delay_s=0.005,
                                               max_delay_s=0.02,
                                               deadline_s=5.0))
        flagged = [report for report in oracle.reports
                   if report.verdict == "malicious"]
        with fault_plan(FaultPlan(specs=(
                FaultSpec(site="rules.webhook", kind="exception",
                          exception="urlerror",
                          message="connection refused"),),
                seed=config.chaos_seed)), \
                _warnings.catch_warnings():
            _warnings.simplefilter("ignore")
            started = time.perf_counter()
            for report in flagged:
                engine.evaluate(report, content_sha256(b"e13"),
                                source_path=report.sample_id)
            dead = (sum(1 for line in
                        dead_letter.read_text().splitlines() if line)
                    if dead_letter.exists() else 0)
            telemetry["webhook_dead_lettered"] += float(dead)
            telemetry["lost_alert_mismatches"] += float(
                max(0, engine.webhook_failures - dead))
            for line in dead_letter.read_text().splitlines():
                json.loads(line)  # the sink must stay machine-readable
            finish("webhook-down", started,
                   dead / len(flagged) if flagged else 1.0,
                   0, contracts=len(flagged))

    # -- slow-server: injected handler delays plus isolated 503 bursts;
    # the client's retry policy (Retry-After honored) hides all of it --
    exception_bursts = (
        FaultSpec(site="server.handler", kind="exception", after=3,
                  max_fires=1),
        FaultSpec(site="server.handler", kind="exception", after=9,
                  max_fires=1),
        FaultSpec(site="server.handler", kind="exception", after=17,
                  max_fires=1),
    )
    with fault_plan(FaultPlan(specs=exception_bursts + (
            FaultSpec(site="server.handler", kind="delay", delay_s=0.005,
                      probability=0.4),),
            seed=config.chaos_seed)), \
            _warnings.catch_warnings():
        _warnings.simplefilter("ignore")
        server = ScanServer(detector, port=0, workers=4).start()
        try:
            client = ServerClient(port=server.port, timeout=30.0)
            client.wait_until_ready()
            total = min(config.server_requests, len(codes))
            answered = 0
            wrong = 0
            started = time.perf_counter()
            for index in range(total):
                try:
                    response = client.scan(codes[index],
                                           sample_id=ids[index])
                except ServerClientError:
                    continue
                answered += 1
                want = oracle_dicts[index]
                if any(response.get(key) != value
                       for key, value in want.items()):
                    wrong += 1
            telemetry["client_retries"] += float(client.retries)
            finish("slow-server", started, answered / total, wrong,
                   contracts=total)
        finally:
            server.shutdown()

    total_mismatches = sum(row["verdict_mismatches"] for row in rows)
    result = ExperimentResult(
        experiment_id="E13",
        title=f"Chaos resilience: {len(rows)} fault classes over "
              f"{config.num_samples} contracts (chaos seed "
              f"{config.chaos_seed})")
    result.rows = rows
    result.summary = {
        "verdict_mismatches": float(total_mismatches),
        "min_availability": min(row["availability"] for row in rows),
        "chaos_seed": float(config.chaos_seed),
        **telemetry,
    }
    result.notes.append(
        "every scenario's verdicts are compared field-by-field against a "
        "fault-free single-process oracle; mismatches must be zero for "
        "every chaos seed")
    result.notes.append(
        "availability counts requests eventually answered (after retries "
        "/ requeues / rebalancing); the floor is gated, so a fault class "
        "that starts dropping work fails the bench")
    result.notes.append(
        "degraded_mode_mismatches asserts the quarantine scenario "
        "actually opened shard 0's circuit and finished degraded rather "
        "than failing the batch")
    return result


# --------------------------------------------------------------------------- #
# E14: retro-triage at fleet scale


def _e14_fleet_writer(db_path: str, fingerprint: str, worker_index: int,
                      shas: Sequence[str], writes: int) -> Dict[str, int]:
    """One fleet writer of the E14 WAL-contention phase (spawned process).

    The registry opens with the normal generous busy timeout (the open
    path reads the schema; an aggressive timeout there could misread a
    momentarily locked header as corruption), then drops
    ``busy_timeout`` to zero so every genuine writer collision surfaces
    as SQLITE_BUSY and must be absorbed by the application-level
    busy-retry policy -- the thing this phase exists to prove.
    """
    from repro.core.report import VerdictReport
    from repro.registry import ScanRegistry
    from repro.resilience import RetryPolicy

    registry = ScanRegistry(
        db_path, fingerprint=fingerprint,
        write_retry=RetryPolicy(max_attempts=20, base_delay_s=0.002,
                                max_delay_s=0.05, deadline_s=120.0))
    try:
        with registry._lock:
            registry._conn.execute("PRAGMA busy_timeout = 0")
        written = 0
        for turn in range(writes):
            sha = shas[(worker_index + turn) % len(shas)]
            report = VerdictReport(
                sample_id=f"e14-w{worker_index}-{turn}", platform="evm",
                label=1, malicious_probability=0.95, model="gnn-e14")
            registry.record(sha, report,
                            source_path=f"fleet/writer-{worker_index}")
            written += 1
        return {"written": written,
                "busy_retries": int(registry.busy_retries)}
    finally:
        registry.close()


@dataclass
class E14Config:
    """Workload of the E14 registry-triage experiment.

    A synthetic registry of ``num_rows`` verdicts (mixed platforms,
    verdicts, scores, indicator notes, source paths, model identities and
    scan times) is retro-triaged by five rules that between them exercise
    every compilable matcher.  The compiled SQL path must agree
    byte-for-byte -- same (rule, sha256) sequence in the same order --
    with the row-at-a-time Python oracle (``TriageRule.matches_row``),
    and beat it by the gated speedup.  A second phase hammers one WAL
    registry from ``writers`` concurrent processes with ``busy_timeout``
    forced to zero, proving the busy-retry write path loses nothing.
    """

    num_rows: int = 100_000
    batch_size: int = 2000
    writers: int = 4
    writes_per_writer: int = 150
    contention_rows: int = 25
    seed: int = 0


def run_e14_registry_triage(
        config: Optional[E14Config] = None) -> ExperimentResult:
    """E14: compiled triage parity + speedup, and lossless WAL contention.

    The acceptance claims: (1) **zero** disagreements between the
    compiled-SQL triage sweep and the row-at-a-time Python oracle over
    the full registry -- not just the same match *set* but the same
    (rule, sha256) *sequence*, rules in file order, rows ascending by
    primary key; (2) the compiled sweep is >= 10x faster at the 100k-row
    scale (the indexes discard non-matches in C instead of dragging every
    row through ``VerdictRow``); (3) ``writers`` concurrent processes
    upserting into one WAL registry with a zero busy timeout lose **no**
    updates -- every SQLITE_BUSY is retried, the summed ``scan_count``
    equals the writes issued, and the busy-retry counters actually
    advanced (an accidentally-disarmed retry path must fail loudly).
    """
    import concurrent.futures
    import hashlib
    import multiprocessing
    import pathlib
    import tempfile
    import time

    from repro.core.report import VerdictReport
    from repro.registry import RetroTriage, ScanRegistry, TriageRule

    config = config or E14Config()
    rng = random.Random(config.seed)
    base = 1_700_000_000.0
    fingerprint = f"e14-fingerprint-{config.seed}"
    model_a, model_b = "sha256:e14-model-a", "sha256:e14-model-b"

    rules = [
        TriageRule(name="hot-malicious", verdict="malicious",
                   min_score=0.97, tag=("e14-hot",)),
        TriageRule(name="drain-indicator", platform="evm",
                   indicators=("selfdestruct-drain",), tag=("e14-drain",)),
        TriageRule(name="recent-malicious", verdict="malicious",
                   since=base + 3600.0 * 600, until=base + 3600.0 * 719,
                   tag=("e14-recent",)),
        TriageRule(name="benign-prefix-audit", max_score=0.2,
                   sha256_prefix="0", tag=("e14-audit",)),
        TriageRule(name="inbox-model-b", verdict="benign",
                   max_score=0.2, path_glob="inbox/*",
                   model_identity=model_b, tag=("e14-inbox",)),
    ]
    rules_text = "\n".join(rule.describe() for rule in rules)

    rows = []
    summary: Dict[str, float] = {}

    with tempfile.TemporaryDirectory(prefix="e14-registry-") as tmp:
        registry = ScanRegistry(pathlib.Path(tmp) / "verdicts.sqlite",
                                fingerprint=fingerprint)

        # -- seed num_rows synthetic verdicts; record_many batches share
        # (model identity, hour bucket) so every matcher has something to
        # discriminate on while the seeding stays transactional --
        groups: Dict[tuple, list] = {}
        for index in range(config.num_rows):
            sha = hashlib.sha256(
                f"e14-row-{config.seed}-{index}".encode()).hexdigest()
            malicious = rng.random() < 0.3
            score = (rng.uniform(0.78, 0.999) if malicious
                     else rng.uniform(0.001, 0.45))
            notes = []
            if malicious and rng.random() < 0.15:
                notes.append("indicator: selfdestruct-drain fired")
            if rng.random() < 0.1:
                notes.append("indicator: delegatecall-proxy fired")
            report = VerdictReport(
                sample_id=f"e14-{index}",
                platform="wasm" if rng.random() < 0.25 else "evm",
                label=int(malicious), malicious_probability=score,
                cfg_blocks=rng.randrange(4, 64), model="gnn-e14",
                notes=notes)
            source = (f"inbox/batch-{index % 97}/contract-{index}.bin"
                      if rng.random() < 0.5 else f"archive/{index}.bin")
            identity = model_a if rng.random() < 0.7 else model_b
            scanned_at = base + 3600.0 * rng.randrange(720)
            groups.setdefault((identity, scanned_at), []).append(
                (sha, report, source))
        for (identity, scanned_at), entries in groups.items():
            registry.record_many(entries, model_identity=identity,
                                 scanned_at=scanned_at)

        # -- compiled sweep: dry-run RetroTriage, outcomes recorded by the
        # on_match hook in its deterministic rule-outer/sha-ascending
        # order (elapsed includes compile + EXPLAIN plan check) --
        compiled_outcomes = []
        triage = RetroTriage(
            registry, rules, rules_text, dry_run=True, resume=False,
            batch_size=config.batch_size,
            on_match=lambda rule, row: compiled_outcomes.append(
                (rule.name, row.sha256)))
        triage_result = triage.run()
        compiled_seconds = triage_result.elapsed_seconds

        # -- Python oracle: same rule order, same keyset batching, but
        # every row crosses into Python and matches_row decides --
        started = time.perf_counter()
        python_outcomes = []
        for rule in rules:
            cursor = None
            while True:
                batch = registry.select_where(
                    "fingerprint = ?", (fingerprint,),
                    after_sha256=cursor, limit=config.batch_size)
                if not batch:
                    break
                for row in batch:
                    if rule.matches_row(row):
                        python_outcomes.append((rule.name, row.sha256))
                cursor = batch[-1].sha256
                if len(batch) < config.batch_size:
                    break
        python_seconds = time.perf_counter() - started

        disagreements = (
            sum(1 for want, got in zip(python_outcomes, compiled_outcomes)
                if want != got)
            + abs(len(python_outcomes) - len(compiled_outcomes)))
        considered = config.num_rows * len(rules)
        rows.append({
            "mode": "triage-compiled", "rows_considered": considered,
            "matches": len(compiled_outcomes),
            "seconds": compiled_seconds,
            "rows_per_second": (considered / compiled_seconds
                                if compiled_seconds else 0.0)})
        rows.append({
            "mode": "triage-python-oracle",
            "rows_considered": considered,
            "matches": len(python_outcomes), "seconds": python_seconds,
            "rows_per_second": (considered / python_seconds
                                if python_seconds else 0.0)})
        registry.close()

    # -- WAL contention: concurrent writer processes, zero busy timeout,
    # no lost updates (summed scan_count == writes issued) --
    with tempfile.TemporaryDirectory(prefix="e14-fleet-") as tmp:
        db_path = str(pathlib.Path(tmp) / "fleet.sqlite")
        # parent creates the schema first: worker opens are then pure
        # reads and cannot race the migration scripts
        ScanRegistry(db_path, fingerprint=fingerprint).close()
        shas = [hashlib.sha256(f"e14-fleet-{index}".encode()).hexdigest()
                for index in range(config.contention_rows)]
        # same start-method preference as the sharded scan engine: fork
        # where the platform has it (no __main__ re-import), else spawn
        available = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in available else available[0])
        started = time.perf_counter()
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=config.writers,
                mp_context=context) as pool:
            futures = [
                pool.submit(_e14_fleet_writer, db_path, fingerprint,
                            worker, shas, config.writes_per_writer)
                for worker in range(config.writers)]
            outcomes = [future.result() for future in futures]
        contention_seconds = time.perf_counter() - started

        expected = config.writers * config.writes_per_writer
        reader = ScanRegistry(db_path, fingerprint=fingerprint)
        recorded = sum(
            row.scan_count for row in reader.select_where(
                "fingerprint = ?", (fingerprint,)))
        reader.close()
        busy_retries = sum(out["busy_retries"] for out in outcomes)
        lost = abs(expected - recorded)
        rows.append({
            "mode": "wal-contention", "writers": config.writers,
            "writes": expected, "seconds": contention_seconds,
            "writes_per_second": (expected / contention_seconds
                                  if contention_seconds else 0.0),
            "busy_retries": busy_retries,
            "lost_update_mismatches": float(lost)})

    summary = {
        "registry_rows": float(config.num_rows),
        "triage_rules": float(len(rules)),
        "triage_matches": float(len(compiled_outcomes)),
        "triage_disagreements": float(disagreements),
        "triage_speedup": (python_seconds / compiled_seconds
                           if compiled_seconds else 0.0),
        "compiled_rows_per_second": (considered / compiled_seconds
                                     if compiled_seconds else 0.0),
        "writes_per_second": (expected / contention_seconds
                              if contention_seconds else 0.0),
        "lost_update_mismatches": float(lost),
        "registry_busy_retries": float(busy_retries),
        "writers": float(config.writers),
    }
    result = ExperimentResult(
        experiment_id="E14",
        title=f"Registry triage at fleet scale: {len(rules)} rules over "
              f"{config.num_rows} rows + {config.writers}-writer WAL "
              f"contention")
    result.rows = rows
    result.summary = summary
    result.notes.append(
        "triage_disagreements compares the compiled-SQL sweep against the "
        "row-at-a-time Python oracle as ordered (rule, sha256) sequences "
        "-- rule file order, sha256 ascending -- so equality is "
        "byte-identical action order, not just the same match set")
    result.notes.append(
        "the contention phase forces busy_timeout to zero in every "
        "writer, so each collision exercises the application-level "
        "busy-retry policy; summed scan_count must equal writes issued "
        "and the retry counters must have advanced")
    return result


# --------------------------------------------------------------------------- #
# E15: event-driven ingest vs poll-cycle ingest (steady-state latency)


@dataclass
class E15Config:
    """Workload of the E15 event-driven ingest experiment.

    A corpus is written out as a directory of ``.bin`` files and ingested
    twice over the same scan stack: once by the polling
    :class:`~repro.registry.watch.WatchDaemon` and once by the event-driven
    :class:`~repro.ingest.EventIngestService` (inotify behind a bounded
    priority queue).  Both paths then idle over the *unchanged* corpus for
    ``steady_cycles`` rounds -- the poll daemon pays a full stat walk per
    round, the event service pays one empty ``select()`` -- and finally a
    fresh contract is dropped into the tree to measure the event path's
    change-to-verdict latency.
    """

    # same 240-contract scale as E10/E11, so the service benches compare
    num_samples: int = 240
    steady_cycles: int = 20
    epochs: int = 6
    num_layers: int = 1
    hidden_features: int = 16
    #: the gated speedup is reported as ``min(observed, cap)`` -- the raw
    #: walk-vs-select ratio runs into the hundreds and is too noisy to
    #: floor-gate, while "comfortably above the cap" is stable anywhere
    speedup_cap: float = 25.0
    seed: int = 0


def run_e15_event_ingest(config: Optional[E15Config] = None) -> ExperimentResult:
    """E15: event-driven ingest parity + steady-state cycle speedup.

    The acceptance claims: (1) the registry rows produced by the event
    path are **byte-identical** to the polling daemon's (same sample ids,
    same verdict dicts field-by-field); (2) a steady-state cycle over the
    unchanged corpus is at least 5x cheaper event-driven than polled
    (gated via the capped ``steady_state_speedup``); (3) a contract
    dropped into the watched tree reaches a recorded verdict without a
    poll-interval round trip.  Requires inotify (the poll-diff fallback
    walks the tree and would measure nothing).
    """
    import pathlib
    import tempfile
    import time

    from repro.core.detector import ScamDetector
    from repro.ingest import EventIngestService, InotifyWatcher
    from repro.registry import ScanRegistry, WatchDaemon

    config = config or E15Config()
    if not InotifyWatcher.available():
        raise RuntimeError(
            "E15 requires inotify (Linux); the poll fallback would measure "
            "a walk against a walk")
    corpus = CorpusGenerator(GeneratorConfig(
        platform="evm", num_samples=config.num_samples,
        label_noise=0.0, seed=config.seed)).generate("e15-corpus")
    detector = ScamDetector(
        ScamDetectConfig(epochs=config.epochs, num_layers=config.num_layers,
                         hidden_features=config.hidden_features,
                         seed=config.seed),
        explain=False)
    detector.train(corpus)

    def report_rows(registry: ScanRegistry) -> Dict[str, Dict[str, object]]:
        return {row.sample_id: row.to_report().to_dict()
                for row in registry.query(limit=None)}

    with tempfile.TemporaryDirectory(prefix="e15-ingest-") as tmp:
        feed = pathlib.Path(tmp) / "feed"
        feed.mkdir()
        for sample in corpus:
            (feed / f"{sample.sample_id}.bin").write_bytes(sample.bytecode)

        # --- poll path: cold ingest, then steady-state walk cycles ------- #
        poll_db = pathlib.Path(tmp) / "verdicts-poll.db"
        with ScanRegistry.for_config(poll_db, detector.config) as registry:
            with WatchDaemon(detector, registry, feed) as daemon:
                started = time.perf_counter()
                daemon.poll_once()
                poll_cold_seconds = time.perf_counter() - started
                started = time.perf_counter()
                for _ in range(config.steady_cycles):
                    daemon.poll_once()
                poll_steady_seconds = (time.perf_counter() - started) \
                    / config.steady_cycles
            poll_rows = report_rows(registry)

        # --- event path: backfill, steady-state idle cycles, reactivity - #
        event_db = pathlib.Path(tmp) / "verdicts-event.db"
        with ScanRegistry.for_config(event_db, detector.config) as registry:
            with EventIngestService(detector, registry, roots=[feed],
                                    backend="inotify") as service:
                started = time.perf_counter()
                service.backfill()
                event_cold_seconds = time.perf_counter() - started
                # absorb the watcher's startup catch-up events (they all
                # classify as unchanged against the freshly-drained index)
                service.cycle(timeout=0.0)
                service.cycle(timeout=0.0)
                steady_inference_before = service.stats.inference_calls
                started = time.perf_counter()
                for _ in range(config.steady_cycles):
                    service.cycle(timeout=0.0)
                event_steady_seconds = (time.perf_counter() - started) \
                    / config.steady_cycles
                steady_inference = (service.stats.inference_calls
                                    - steady_inference_before)
                event_rows = report_rows(registry)

                # drop one fresh contract: kernel event -> queue -> verdict
                # (content from a different seed, so it cannot be answered
                # by the content-hash dedupe path)
                extra = CorpusGenerator(GeneratorConfig(
                    platform="evm", num_samples=1, label_noise=0.0,
                    seed=config.seed + 1)).generate("e15-late")[0]
                started = time.perf_counter()
                (feed / "late-drop.bin").write_bytes(extra.bytecode)
                deadline = started + 30.0
                while "late-drop.bin" not in report_rows(registry):
                    if time.perf_counter() > deadline:
                        raise RuntimeError(
                            "E15: late-dropped contract never reached the "
                            "registry")
                    service.cycle(timeout=0.05)
                react_seconds = time.perf_counter() - started
                enqueue_deduped = service.stats.deduped

        mismatches = sum(
            1 for sample_id in set(poll_rows) | set(event_rows)
            if poll_rows.get(sample_id) != event_rows.get(sample_id))

    observed = (poll_steady_seconds / event_steady_seconds
                if event_steady_seconds else float("inf"))
    result = ExperimentResult(
        experiment_id="E15",
        title="Event-driven ingest: inotify + bounded queue vs poll cycles")
    result.rows = [
        {"mode": "poll-cold", "contracts": config.num_samples,
         "seconds": poll_cold_seconds,
         "contracts_per_second": (config.num_samples / poll_cold_seconds
                                  if poll_cold_seconds else 0.0)},
        {"mode": "event-cold", "contracts": config.num_samples,
         "seconds": event_cold_seconds,
         "contracts_per_second": (config.num_samples / event_cold_seconds
                                  if event_cold_seconds else 0.0)},
        {"mode": "poll-steady", "contracts": config.num_samples,
         "seconds": poll_steady_seconds},
        {"mode": "event-steady", "contracts": config.num_samples,
         "seconds": event_steady_seconds},
        {"mode": "event-react", "contracts": 1, "seconds": react_seconds},
    ]
    result.summary = {
        "steady_state_speedup": min(observed, config.speedup_cap),
        "steady_state_ratio_observed": observed,
        "poll_steady_cycle_ms": poll_steady_seconds * 1000.0,
        "event_steady_cycle_ms": event_steady_seconds * 1000.0,
        "event_react_ms": react_seconds * 1000.0,
        "verdict_mismatches": float(mismatches),
        "registry_rows": float(len(event_rows)),
        "enqueue_deduped": float(enqueue_deduped),
        "steady_inference_calls": float(steady_inference),
    }
    result.notes.append(
        "event-path registry rows are compared field-by-field against the "
        "polling daemon's over the same corpus; mismatches must be zero")
    result.notes.append(
        f"steady_state_speedup is capped at {config.speedup_cap:g}x for "
        f"gating (raw walk-vs-select ratio in "
        f"steady_state_ratio_observed); the acceptance floor is 5x")
    result.notes.append(
        "steady_inference_calls must be zero: idling over an unchanged "
        "corpus performs no model invocations on either path")
    return result


# --------------------------------------------------------------------------- #
# E16: observability overhead + span accounting


@dataclass
class E16Config:
    """Workload of the E16 tracing-overhead experiment.

    The same per-contract scan loop runs four timed passes over one
    corpus -- two with tracing disarmed, two with a tracer armed -- each
    on a fresh :class:`~repro.service.batch.BatchScanner` and graph
    cache, so every pass performs identical cold-scan work.  Taking the
    best pass per mode filters scheduler noise; the disarmed best/worst
    ratio doubles as the jitter yardstick the armed ratio is judged
    against.
    """

    # same 240-contract scale as E10/E11/E15, so the service benches compare
    num_samples: int = 240
    warmup_samples: int = 40
    passes_per_mode: int = 2
    epochs: int = 6
    num_layers: int = 1
    hidden_features: int = 16
    cache_capacity: int = 1024
    #: hard ceiling asserted by the bench: armed tracing must cost <= 10%
    armed_overhead_cap: float = 1.10
    seed: int = 0


def run_e16_observability(
    config: Optional[E16Config] = None,
) -> ExperimentResult:
    """E16: disarmed tracing is free, armed tracing costs <= 10%.

    The acceptance claims: (1) with no tracer armed the instrumented scan
    stack is statistically indistinguishable from an uninstrumented one
    (``disarmed_overhead_ratio``, best-vs-worst of repeated disarmed
    passes, stays at repeat-jitter level -- and the seed-gated E8/E12
    throughputs hold); (2) an armed tracer costs at most 10% wall clock
    (``armed_overhead_ratio``); (3) span accounting is exact over a
    240-contract run: every scan yields exactly one trace, no orphan
    spans, and every same-thread child nests inside its parent; (4) armed
    and disarmed passes produce identical verdicts.
    """
    import time

    from repro.core.detector import ScamDetector
    from repro.obs import tracing, verify_traces
    from repro.service import BatchScanner, GraphCache

    config = config or E16Config()
    corpus = CorpusGenerator(GeneratorConfig(
        platform="evm", num_samples=config.num_samples,
        label_noise=0.0, seed=config.seed)).generate("e16-corpus")
    detector = ScamDetector(
        ScamDetectConfig(epochs=config.epochs, num_layers=config.num_layers,
                         hidden_features=config.hidden_features,
                         seed=config.seed),
        explain=False)
    detector.train(corpus)
    samples = list(corpus)

    def scan_pass(subset) -> Tuple[float, list]:
        """One per-contract scan pass on a fresh scanner + cold cache."""
        cache = GraphCache.for_config(
            detector.config, capacity=config.cache_capacity)
        scanner = BatchScanner(detector, cache=cache)
        reports = []
        started = time.perf_counter()
        try:
            for sample in subset:
                result = scanner.scan_codes(
                    [sample.bytecode], sample_ids=[sample.sample_id])
                reports.extend(result.reports)
        finally:
            scanner.close()
        return time.perf_counter() - started, reports

    # warm the stack (numpy dispatch, lowering tables) outside the timers
    scan_pass(samples[:config.warmup_samples])

    disarmed_seconds: list = []
    disarmed_reports: list = []
    for _ in range(config.passes_per_mode):
        seconds, reports = scan_pass(samples)
        disarmed_seconds.append(seconds)
        disarmed_reports = reports

    armed_seconds: list = []
    armed_reports: list = []
    span_records: list = []
    for index in range(config.passes_per_mode):
        with tracing() as tracer:
            seconds, reports = scan_pass(samples)
        armed_seconds.append(seconds)
        armed_reports = reports
        if index == 0:
            span_records = tracer.drain()

    verdict_mismatches = sum(
        1 for disarmed, armed in zip(disarmed_reports, armed_reports)
        if (disarmed.label, disarmed.malicious_probability)
        != (armed.label, armed.malicious_probability))

    invariants = verify_traces(span_records)
    # one scan == one trace: a count drift is an accounting failure even
    # when every individual trace has exactly one root
    accounting = (invariants["accounting_mismatches"]
                  + invariants["orphan_spans"]
                  + abs(invariants["traces"] - config.num_samples))

    disarmed_best = min(disarmed_seconds)
    disarmed_worst = max(disarmed_seconds)
    armed_best = min(armed_seconds)

    result = ExperimentResult(
        experiment_id="E16",
        title="Observability: tracing overhead + span accounting")
    result.rows = [
        {"mode": "disarmed", "contracts": config.num_samples,
         "seconds": disarmed_best,
         "contracts_per_second": (config.num_samples / disarmed_best
                                  if disarmed_best else 0.0)},
        {"mode": "armed", "contracts": config.num_samples,
         "seconds": armed_best,
         "contracts_per_second": (config.num_samples / armed_best
                                  if armed_best else 0.0)},
    ]
    result.summary = {
        "disarmed_contracts_per_second": (
            config.num_samples / disarmed_best if disarmed_best else 0.0),
        "armed_contracts_per_second": (
            config.num_samples / armed_best if armed_best else 0.0),
        "armed_overhead_ratio": (armed_best / disarmed_best
                                 if disarmed_best else float("inf")),
        "disarmed_overhead_ratio": (disarmed_worst / disarmed_best
                                    if disarmed_best else float("inf")),
        "traces": float(invariants["traces"]),
        "spans": float(invariants["spans"]),
        "span_accounting_mismatches": float(accounting),
        "span_nesting_mismatches": float(invariants["nesting_mismatches"]),
        "verdict_mismatches": float(verdict_mismatches),
    }
    result.notes.append(
        "overhead ratios compare the best pass per mode on identical "
        "cold-cache per-contract scan loops; disarmed_overhead_ratio is "
        "the repeat-jitter yardstick (best vs worst disarmed pass)")
    result.notes.append(
        f"the bench asserts armed_overhead_ratio <= "
        f"{config.armed_overhead_cap:g}; the *_mismatches counters are "
        f"zero-rise gated")
    return result
