"""Rendering of experiment results as ASCII tables and figure series."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class ExperimentResult:
    """Result of one experiment run.

    Attributes:
        experiment_id: "E1" .. "E7".
        title: Human-readable title (matches DESIGN.md's experiment index).
        rows: Table rows -- a list of dicts sharing the same keys.
        summary: Aggregate values (e.g. the zoo-average accuracy for E1).
        notes: Free-form notes recorded during the run.
    """

    experiment_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def column_names(self) -> List[str]:
        return list(self.rows[0].keys()) if self.rows else []

    def format(self) -> str:
        """The full report: title, table and summary."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            parts.append(format_table(self.rows))
        if self.summary:
            parts.append("summary: " + ", ".join(
                f"{key}={_format_value(value)}" for key, value in self.summary.items()))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render ``rows`` (a list of same-keyed dicts) as an aligned ASCII table."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    rendered: List[List[str]] = [[_format_value(row.get(column, "")) for column in columns]
                                 for row in rows]
    widths = [max(len(column), *(len(line[index]) for line in rendered))
              for index, column in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(widths[index]) for index, column in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for line in rendered:
        lines.append(" | ".join(value.ljust(widths[index]) for index, value in enumerate(line)))
    return "\n".join(lines)


def format_series(series: Dict[str, Sequence[float]], x_values: Sequence[float],
                  title: str = "", width: int = 50, y_min: float = 0.0,
                  y_max: float = 1.0) -> str:
    """Render one or more y-series over shared x-values as an ASCII chart.

    Used to regenerate the paper-style "figures": each series becomes one row
    of bars per x value, so crossovers and degradation trends are visible in
    plain terminal output.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    span = max(y_max - y_min, 1e-9)
    for name, values in series.items():
        lines.append(f"[{name}]")
        for x, y in zip(x_values, values):
            filled = int(round((float(y) - y_min) / span * width))
            filled = max(0, min(width, filled))
            bar = "#" * filled + "." * (width - filled)
            lines.append(f"  x={x:<6g} |{bar}| {y:.3f}")
    return "\n".join(lines)
