"""Content-addressed cache of lowered contract graphs.

Deployment-gate and triage workloads scan the same bytecode over and over
(factory clones, re-submitted contracts, re-audits after a model update), but
the frontend lowering -- disassembly, CFG recovery, feature extraction -- is
by far the most expensive part of a scan.  :class:`GraphCache` memoises the
lowering step: entries are addressed by the SHA-256 of the raw bytecode (plus
the platform), and the whole cache is scoped to one
:meth:`~repro.core.config.ScamDetectConfig.graph_fingerprint`, so a config
change that would alter the lowered graphs can never serve stale entries.

Two tiers:

* an in-memory LRU bounded by ``capacity`` entries, and
* an optional on-disk tier (one ``.npz`` file per entry under
  ``disk_dir/<fingerprint>/``) that survives process restarts and is shared
  between workers on the same host.

The disk tier is **cross-process safe** without lockfiles: writers dump each
entry to a process-unique hidden temp file and publish it with one atomic
:func:`os.replace`, so a reader can never observe a torn ``.npz``; readers
treat an entry that still fails to load (bit rot, pre-fix torn writes) as a
miss, warn, and delete it so the next scan rewrites it.  This is what lets
the :class:`~repro.service.sharded.ShardedScanner` worker processes share
one warm directory with zero coordination.

The disk layout stores only numeric arrays and a tiny JSON sidecar -- no
pickled code objects -- matching the safety guarantees of
:mod:`repro.core.persistence`.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pathlib
import threading
import time
import warnings
import zipfile
from collections import OrderedDict
from dataclasses import dataclass, fields, replace
from typing import Optional, Union

import numpy as np

from repro.core.config import ScamDetectConfig
from repro.gnn.data import ContractGraph
from repro.obs.trace import trace
from repro.resilience.faults import fault_point

PathLike = Union[str, pathlib.Path]

#: Name of the JSON sidecar that scopes a disk cache directory to one
#: graph fingerprint.
DISK_META_FILENAME = "cache-meta.json"

#: Per-process counter that, together with the pid, makes every temp file
#: written by the disk tier unique across concurrent writers.
_TEMP_COUNTER = itertools.count()


def bytecode_key(code: bytes, platform: str) -> str:
    """Content address of one cache entry: SHA-256 over platform + bytecode."""
    digest = hashlib.sha256()
    digest.update(platform.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(code)
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Counters accumulated by a :class:`GraphCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_writes: int = 0
    stale_purges: int = 0
    disk_corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        """Counters plus the derived rates, as plain JSON-ready values.

        This is the ``cache`` section of the shared stats schema emitted by
        both :meth:`~repro.service.batch.BatchScanResult.stats_dict` (offline
        batch scans) and the scan server's ``GET /metrics`` (online serving),
        so dashboards can consume either path with one parser.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_writes": self.disk_writes,
            "stale_purges": self.stale_purges,
            "disk_corrupt": self.disk_corrupt,
        }

    def copy(self) -> "CacheStats":
        """An independent snapshot of the counters."""
        return replace(self)

    def delta(self, before: "CacheStats") -> "CacheStats":
        """Counter-wise difference ``self - before`` (for window stats)."""
        return CacheStats(
            **{
                field.name: getattr(self, field.name)
                - getattr(before, field.name)
                for field in fields(self)
            }
        )

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Counter-wise sum (for aggregating per-shard windows)."""
        return CacheStats(
            **{
                field.name: getattr(self, field.name)
                + getattr(other, field.name)
                for field in fields(self)
            }
        )

    def format(self) -> str:
        return (
            f"cache: {self.hits} hits / {self.lookups} lookups "
            f"(hit_rate={self.hit_rate:.1%}, evictions={self.evictions}, "
            f"disk_hits={self.disk_hits})"
        )


class GraphCache:
    """Two-tier content-addressed cache of :class:`ContractGraph` objects.

    Args:
        fingerprint: The graph fingerprint the cache is scoped to; use
            :meth:`for_config` to derive it from a pipeline config.
        capacity: Maximum entries held in the in-memory LRU tier.
        disk_dir: Optional directory for the persistent tier.  Entries are
            kept under ``disk_dir/<fingerprint>/``, so caches for different
            configs can share one directory safely; a fingerprint
            sub-directory whose sidecar is missing or mismatched is purged
            on first use (stale-cache detection), so pointing an upgraded
            pipeline at an old cache directory is always safe.

    The cache is thread-safe: :class:`~repro.service.batch.BatchScanner`
    lowers contracts from many worker threads against one shared cache.
    """

    def __init__(
        self,
        fingerprint: str,
        capacity: int = 1024,
        disk_dir: Optional[PathLike] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.fingerprint = fingerprint
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, ContractGraph]" = OrderedDict()
        # Entries live under disk_dir/<fingerprint>/ so caches built for
        # different configs can share one directory without ever seeing each
        # other's graphs.
        self._tier_dir: Optional[pathlib.Path] = None
        if disk_dir is not None:
            self._tier_dir = pathlib.Path(disk_dir) / self.fingerprint
            self._prepare_disk_tier()

    @classmethod
    def for_config(
        cls,
        config: ScamDetectConfig,
        capacity: int = 1024,
        disk_dir: Optional[PathLike] = None,
    ) -> "GraphCache":
        """Build a cache scoped to ``config``'s graph fingerprint."""
        return cls(
            config.graph_fingerprint(), capacity=capacity, disk_dir=disk_dir
        )

    # ------------------------------------------------------------------ #
    # public API

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def disk_parent_dir(self) -> Optional[pathlib.Path]:
        """The ``disk_dir`` this cache was built with (None if memory-only).

        Handing this directory to another ``GraphCache`` -- or to the
        :class:`~repro.service.sharded.ShardedScanner` worker processes --
        shares the same persistent tier, which the atomic write protocol
        makes safe.
        """
        if self._tier_dir is None:
            return None
        return self._tier_dir.parent

    def get(
        self,
        code: bytes,
        platform: str,
        label: int = 0,
        sample_id: str = "",
    ) -> Optional[ContractGraph]:
        """Return the cached graph for ``code`` or None on a miss.

        ``label`` and ``sample_id`` are per-request metadata, not part of the
        content address: the stored arrays are rebound to the caller's values
        so one cached lowering serves every sample with identical bytecode.
        """
        key = bytecode_key(code, platform)
        # obs site cache.lookup: records only inside an active trace (the
        # shared no-op context manager otherwise), so executor threads with
        # no propagated context cost one global read here
        with trace("cache.lookup") as span:
            with self._lock:
                graph = self._entries.get(key)
                if graph is not None:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    span.set(result="hit")
                    return self._rebind(graph, label, sample_id)
            graph = self._disk_get(key)
            if graph is not None:
                with self._lock:
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                    self._insert(key, graph)
                    span.set(result="disk_hit")
                    return self._rebind(graph, label, sample_id)
            with self._lock:
                self.stats.misses += 1
            span.set(result="miss")
            return None

    def put(self, code: bytes, platform: str, graph: ContractGraph) -> None:
        """Store the lowering of ``code``; evicts LRU entries past capacity."""
        key = bytecode_key(code, platform)
        with self._lock:
            fresh = key not in self._entries
            self._insert(key, graph)
        if fresh:
            self._disk_put(key, graph)

    def clear(self) -> None:
        """Drop the in-memory tier (disk entries are kept)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------ #
    # in-memory tier

    def _insert(self, key: str, graph: ContractGraph) -> None:
        self._entries[key] = graph
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    @staticmethod
    def _rebind(
        graph: ContractGraph, label: int, sample_id: str
    ) -> ContractGraph:
        return ContractGraph(
            node_features=graph.node_features,
            adjacency=graph.adjacency,
            normalized_adjacency=graph.normalized_adjacency,
            label=label,
            sample_id=sample_id,
            platform=graph.platform,
        )

    # ------------------------------------------------------------------ #
    # disk tier

    def _prepare_disk_tier(self) -> None:
        assert self._tier_dir is not None
        self._tier_dir.mkdir(parents=True, exist_ok=True)
        meta_path = self._tier_dir / DISK_META_FILENAME
        stored = None
        if meta_path.exists():
            try:
                stored = json.loads(meta_path.read_text()).get("fingerprint")
            except (ValueError, OSError):
                stored = None
        # The directory name already scopes entries to one fingerprint; the
        # sidecar is a tamper check.  Entries without a matching sidecar
        # (meta deleted, dir renamed, layout from an older version) cannot
        # be trusted and are purged.  ``missing_ok`` tolerates another
        # process purging (or replacing) the same entry concurrently.
        if stored != self.fingerprint:
            for entry in self._tier_dir.glob("*.npz"):
                try:
                    entry.unlink()
                except OSError:
                    continue
                self.stats.stale_purges += 1
        # orphaned temp files (a writer that crashed between dump and
        # rename) are garbage, never published entries: sweep them -- entry
        # temps (.tmp.npz) and sidecar temps (.tmp.json) alike -- once old
        # enough that no live writer can still own them
        now = time.time()
        for leftover in self._tier_dir.glob(".*.tmp.*"):
            try:
                if now - leftover.stat().st_mtime > 300.0:
                    leftover.unlink()
            except OSError:
                continue
        # publish the sidecar atomically too: a concurrent reader must see
        # either the old complete sidecar or the new one, never a torn file
        # that would trigger a spurious purge of shared entries
        self._atomic_write_bytes(
            meta_path,
            json.dumps(
                {"fingerprint": self.fingerprint}, indent=2, sort_keys=True
            ).encode("utf-8"),
        )

    def _atomic_write_bytes(self, path: pathlib.Path, payload: bytes) -> None:
        tmp_path = self._temp_path_for(path)
        try:
            tmp_path.write_bytes(payload)
            os.replace(tmp_path, path)
        except OSError:
            tmp_path.unlink(missing_ok=True)
            raise

    @staticmethod
    def _temp_path_for(path: pathlib.Path) -> pathlib.Path:
        """A process-unique hidden sibling of ``path`` for write-then-rename.

        The name embeds the pid plus a per-process counter so concurrent
        writers (threads or :class:`~repro.service.sharded.ShardedScanner`
        worker processes) can never scribble over each other's half-written
        temp file; the leading dot keeps ``scan_directory`` and the stale
        purge glob from ever seeing it as an entry.
        """
        token = f"{os.getpid()}-{next(_TEMP_COUNTER)}"
        return path.with_name(f".{path.stem}.{token}.tmp{path.suffix}")

    def _entry_path(self, key: str) -> Optional[pathlib.Path]:
        if self._tier_dir is None:
            return None
        return self._tier_dir / f"{key}.npz"

    def _disk_get(self, key: str) -> Optional[ContractGraph]:
        path = self._entry_path(key)
        if path is None or not path.exists():
            return None
        try:
            # fault site cache.disk_read: "corrupt" scribbles over the entry
            # before np.load sees it, "disk_full"/"oserror" raise an OSError
            # here -- both are swallowed by the recovery path below, exactly
            # like real bit rot
            fault_point("cache.disk_read", path=path)
            with np.load(path, allow_pickle=False) as arrays:
                return ContractGraph(
                    node_features=arrays["node_features"],
                    adjacency=arrays["adjacency"],
                    normalized_adjacency=arrays["normalized_adjacency"],
                    label=0,
                    sample_id="",
                    platform=str(arrays["platform"]),
                )
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            # Writes are atomic (temp file + os.replace), so an unreadable
            # entry means bit rot or a torn write from a pre-atomic version
            # of this cache: treat it as a miss, warn, and delete it so the
            # next put rewrites a clean copy.
            with self._lock:
                self.stats.disk_corrupt += 1
            warnings.warn(
                f"graph cache entry {path} is unreadable; "
                f"treating it as a miss and removing it",
                stacklevel=2,
            )
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            return None

    def _disk_put(self, key: str, graph: ContractGraph) -> None:
        path = self._entry_path(key)
        if path is None:
            return
        # write-temp-then-rename: the published path only ever holds a
        # complete .npz, so concurrent readers (threads or ShardedScanner
        # worker processes) can never load a torn entry; the temp name is
        # process-unique so concurrent writers of the same key cannot
        # interleave, and the last atomic os.replace simply wins
        tmp_path = self._temp_path_for(path)
        try:
            # fault site cache.disk_write: a "disk_full" OSError lands in
            # the handler below -- the scan continues without the entry
            fault_point("cache.disk_write", path=tmp_path)
            np.savez(
                tmp_path,
                node_features=graph.node_features,
                adjacency=graph.adjacency,
                normalized_adjacency=graph.normalized_adjacency,
                platform=np.asarray(graph.platform),
            )
            os.replace(tmp_path, path)
        except OSError as error:
            # a full or vanished cache directory must never fail a scan --
            # the disk tier is an optimisation, not a requirement
            tmp_path.unlink(missing_ok=True)
            warnings.warn(
                f"graph cache write to {path} failed ({error}); "
                f"continuing without the disk entry",
                stacklevel=2,
            )
            return
        self.stats.disk_writes += 1

    def __repr__(self) -> str:
        tier = (
            f", disk={self._tier_dir}" if self._tier_dir is not None else ""
        )
        return (
            f"GraphCache(fingerprint={self.fingerprint!r}, "
            f"entries={len(self._entries)}/{self.capacity}{tier})"
        )
