"""Batch scanning: parallel frontend lowering + batched GNN inference.

:class:`BatchScanner` is the service-layer driver behind
:meth:`ScamDetector.scan_many` and :meth:`ScamDetector.scan_directory`.  It
splits a scan into the stages that actually dominate wall-clock time and
optimises each one:

1. **Lowering** (bytecode -> CFG -> graph) runs across a
   :class:`concurrent.futures.ThreadPoolExecutor`, consulting the shared
   :class:`~repro.service.cache.GraphCache` first so repeated bytecode --
   factory clones, re-submissions, re-audits -- is lowered exactly once.
2. **Inference** runs on the vectorized batched-graph engine: every chunk of
   ``inference_batch_size`` graphs is packed into one block-diagonal
   :class:`~repro.gnn.data.GraphBatch` and scored with a single model call,
   instead of one Python-level forward pass per contract.
3. **Reporting** reuses :meth:`ScamDetector.build_report`, which is what
   makes batch verdicts identical to single-contract ``scan`` verdicts
   (scores are quantized there, so verdicts are batch-invariant).
"""

from __future__ import annotations

import concurrent.futures
import pathlib
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.detector import BytecodeLike, ScamDetector, coerce_bytecode
from repro.core.frontends import detect_platform
from repro.core.report import ScanSummary
from repro.gnn.data import ContractGraph
from repro.obs.trace import carrier, trace, trace_from
from repro.service.cache import CacheStats, DISK_META_FILENAME, GraphCache

PathLike = Union[str, pathlib.Path]

#: File suffixes a directory walk never treats as contract bytecode: cache
#: entries and SQLite registries (plus their WAL sidecars) may legitimately
#: live next to a watched corpus.
_NON_CONTRACT_SUFFIXES = frozenset(
    (".npz", ".db", ".db-wal", ".db-shm", ".sqlite", ".sqlite3")
)


def iter_contract_files(
    directory: PathLike, pattern: str = "*", recursive: bool = True
):
    """Yield the contract files a directory scan covers, sorted by path.

    The single source of truth for what counts as a scannable file --
    :meth:`BatchScanner.scan_directory`, the sharded engine and the
    :class:`~repro.registry.watch.WatchDaemon` all walk through here, so a
    watch cycle sees exactly the corpus a ``scan-batch`` over the same
    directory would.  Hidden files, graph-cache files and SQLite registry
    files are never contracts.

    Args:
        directory: Root directory (must exist).
        pattern: Glob filter (may contain ``/`` to constrain directories).
        recursive: Walk subdirectories too (default); False restricts the
            scan to the top level.

    Raises:
        FileNotFoundError: If ``directory`` does not exist.
    """
    root = pathlib.Path(directory)
    if not root.is_dir():
        raise FileNotFoundError(f"scan directory not found: {root}")
    walker = root.rglob(pattern) if recursive else root.glob(pattern)
    for path in sorted(walker):
        if (
            not path.is_file()
            or path.name.startswith(".")
            or path.name == DISK_META_FILENAME
            or path.suffix in _NON_CONTRACT_SUFFIXES
        ):
            continue
        yield path


def read_contract_file(path: PathLike) -> bytes:
    """Read one contract file: ``.hex`` parses as hex text, the rest as
    raw binary.

    Raises:
        ValueError: On undecodable hex or an empty file.
        OSError: On an unreadable file.
    """
    path = pathlib.Path(path)
    raw = (
        coerce_bytecode(path.read_text())
        if path.suffix == ".hex"
        else path.read_bytes()
    )
    if not raw:
        raise ValueError("empty file")
    return raw


def collect_directory_inputs(
    directory: PathLike, pattern: str = "*", recursive: bool = True
) -> Tuple[List[bytes], List[str], List[str]]:
    """Gather ``(raw_codes, sample_ids, skipped)`` for a directory scan.

    Shared by :meth:`BatchScanner.scan_directory` and
    :meth:`~repro.service.sharded.ShardedScanner.scan_directory`, so both
    engines agree exactly on which files a directory scan covers (see
    :func:`iter_contract_files`); unreadable, empty or undecodable files
    are skipped with a warning and reported in the third element instead of
    aborting the walk.

    Raises:
        FileNotFoundError: If ``directory`` does not exist.
    """
    root = pathlib.Path(directory)
    raw_codes: List[bytes] = []
    ids: List[str] = []
    skipped: List[str] = []

    def skip(path: pathlib.Path, reason: str) -> None:
        entry = f"{path.relative_to(root)}: {reason}"
        skipped.append(entry)
        warnings.warn(
            f"scan_directory skipping {path}: {reason}", stacklevel=2
        )

    for path in iter_contract_files(root, pattern, recursive=recursive):
        try:
            raw = read_contract_file(path)
        except ValueError as error:
            reason = (
                "empty file"
                if "empty file" in str(error)
                else f"not valid hex bytecode ({error})"
            )
            skip(path, reason)
            continue
        except OSError as error:
            skip(path, f"unreadable ({error.strerror or error})")
            continue
        raw_codes.append(raw)
        ids.append(str(path.relative_to(root)))
    return raw_codes, ids, skipped


def throughput_stats(
    contracts: int,
    malicious: int,
    elapsed_seconds: float,
    cache_stats: CacheStats,
    batch_sizes: Dict[int, int],
) -> Dict[str, object]:
    """The shared stats schema reported by offline and online scan paths.

    ``BatchScanResult.stats_dict`` (offline batch scans) and the scan
    server's ``GET /v1/metrics`` (online serving) both emit exactly this
    shape, so one dashboard/alerting parser covers both deployment modes.

    Args:
        contracts: Contracts scored.
        malicious: Contracts flagged malicious.
        elapsed_seconds: Wall-clock window the counters cover.
        cache_stats: Graph-cache counters for the same window.
        batch_sizes: Histogram of GNN inference batch sizes
            (``{batch_size: num_batches}``).
    """
    total_batches = sum(batch_sizes.values())
    return {
        "contracts": contracts,
        "malicious": malicious,
        "benign": contracts - malicious,
        "elapsed_seconds": elapsed_seconds,
        "contracts_per_second": (
            contracts / elapsed_seconds if elapsed_seconds > 0.0 else 0.0
        ),
        "cache": cache_stats.to_dict(),
        "batches": {
            "count": total_batches,
            "max_size": max(batch_sizes) if batch_sizes else 0,
            "coalesced": sum(
                count for size, count in batch_sizes.items() if size > 1
            ),
            "histogram": {
                str(size): batch_sizes[size] for size in sorted(batch_sizes)
            },
        },
    }


@dataclass
class BatchScanResult(ScanSummary):
    """A :class:`~repro.core.report.ScanSummary` plus service telemetry.

    Attributes:
        reports: Per-contract verdict reports, in input order.
        elapsed_seconds: Wall-clock time of the whole batch scan.
        num_workers: Worker threads used for lowering.
        cache_stats: Snapshot of the cache counters accumulated during this
            scan (zeros when no cache was attached).
        batch_sizes: Histogram of GNN inference batch sizes in this scan
            (``{batch_size: num_batches}``).
        skipped: Directory-scan inputs that were skipped (unreadable, empty,
            or undecodable files), as ``"<sample id>: <reason>"`` strings.
        shard_stats: Per-shard telemetry (``{"shard-N": throughput_stats}``)
            when the scan ran on a :class:`~repro.service.sharded.
            ShardedScanner` worker pool; empty for single-process scans.
        registry_hits: Contracts answered straight from the attached
            :class:`~repro.registry.store.ScanRegistry` -- distinct from
            graph-cache hits: a cache hit skips *lowering* but still runs
            inference, a registry hit skips the model entirely.
        cascade_stats: Tier-0 cascade counters (None when the cascade is
            off): ``short_circuits`` (confident-benign contracts that
            skipped lowering + inference), ``escalations`` (contracts that
            paid the full pipeline price), and ``disagreements``
            (escalated contracts the GNN flagged malicious although the
            pre-filter had scored them below the at-target-recall
            threshold -- only the safety margin escalated them; any rise
            means the pre-filter is drifting towards missing malicious
            contracts).
    """

    elapsed_seconds: float = 0.0
    num_workers: int = 1
    cache_stats: CacheStats = field(default_factory=CacheStats)
    batch_sizes: Dict[int, int] = field(default_factory=dict)
    skipped: List[str] = field(default_factory=list)
    shard_stats: Dict[str, Dict[str, object]] = field(default_factory=dict)
    registry_hits: int = 0
    cascade_stats: Optional[Dict[str, int]] = None

    @property
    def contracts_per_second(self) -> float:
        """Scan throughput (0.0 for an empty or instantaneous batch)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.num_scanned / self.elapsed_seconds

    def stats_dict(self) -> Dict[str, object]:
        """This scan's telemetry in the shared offline/online stats schema
        (see :func:`throughput_stats`)."""
        stats = throughput_stats(
            self.num_scanned,
            self.num_malicious,
            self.elapsed_seconds,
            self.cache_stats,
            self.batch_sizes,
        )
        stats["registry"] = {
            "hits": self.registry_hits,
            "misses": self.num_scanned - self.registry_hits,
        }
        if self.cascade_stats is not None:
            stats["cascade"] = dict(self.cascade_stats)
        if self.shard_stats:
            stats["shards"] = dict(self.shard_stats)
        return stats

    def format(self) -> str:
        lines = [
            super().format(),
            f"  throughput: {self.num_scanned} contracts in "
            f"{self.elapsed_seconds:.3f}s "
            f"({self.contracts_per_second:.1f}/s, "
            f"{'shards' if self.shard_stats else 'workers'}="
            f"{self.num_workers})",
        ]
        if self.registry_hits:
            lines.append(
                f"  registry: {self.registry_hits} hits / "
                f"{self.num_scanned} contracts served without "
                f"inference"
            )
        if self.cascade_stats is not None:
            lines.append(
                f"  cascade: "
                f"{self.cascade_stats['short_circuits']} "
                f"short-circuits, "
                f"{self.cascade_stats['escalations']} escalations, "
                f"{self.cascade_stats['disagreements']} "
                f"disagreements"
            )
        if self.cache_stats.lookups:
            lines.append(f"  {self.cache_stats.format()}")
        for name in sorted(self.shard_stats):
            shard = self.shard_stats[name]
            lines.append(
                f"  {name}: {shard['contracts']} contracts "
                f"({shard['contracts_per_second']:.1f}/s, "
                f"cache hit_rate="
                f"{shard['cache']['hit_rate']:.1%})"
            )
        if self.skipped:
            lines.append(
                f"  skipped {len(self.skipped)} unreadable input"
                f"{'s' if len(self.skipped) != 1 else ''}"
            )
        return "\n".join(lines)


class BatchScanner:
    """Drives high-volume scans against a trained :class:`ScamDetector`.

    Args:
        detector: A trained detector; its threshold/explain settings apply
            to every report.
        cache: Optional :class:`GraphCache` attached to the detector's
            pipeline (and left attached; the throwaway scanners inside
            ``ScamDetector.scan_many`` / ``scan_directory`` restore the
            previous cache when they finish).  Must match the pipeline
            config's graph fingerprint (use :meth:`GraphCache.for_config`).
        max_workers: Lowering threads; None uses the executor default, and
            values <= 1 lower inline without an executor.  Pure-Python
            lowering is GIL-bound, so the thread pool mainly helps when
            lowering releases the GIL (NumPy-heavy graphs) or waits on the
            disk cache tier; for small hot corpora ``max_workers=1`` can be
            the fastest cold-scan setting.
        inference_batch_size: Graphs per batched model call (bounds the peak
            size of the stacked node-feature matrix on very large corpora).
        shards: Number of scan worker *processes*.  The default (1) runs
            everything in this process; ``shards >= 2`` routes scans through
            a :class:`~repro.service.sharded.ShardedScanner` pool that
            partitions contracts by content hash across pipeline replicas,
            escaping the GIL for the CPU-bound lowering path.  Workers can
            only share a cache through its *disk* tier -- attach a
            ``GraphCache`` built with ``disk_dir=...`` (a memory-only cache
            is invisible to the pool and draws a warning).  Use
            :meth:`close` (or the context-manager form) to release the pool.
        registry: Optional :class:`~repro.registry.store.ScanRegistry`.
            When attached, every scan first consults the registry: bytecode
            whose ``(sha256, graph fingerprint)`` is already recorded under
            the *same model description and explain setting* is answered
            from the stored verdict with no lowering and no inference
            (reported as :attr:`BatchScanResult.registry_hits`), and every
            freshly scanned verdict is recorded back durably.  The registry
            must be scoped to this detector's graph fingerprint.
    """

    def __init__(
        self,
        detector: ScamDetector,
        cache: Optional[GraphCache] = None,
        max_workers: Optional[int] = None,
        inference_batch_size: int = 256,
        shards: int = 1,
        registry=None,
    ) -> None:
        if not detector.is_trained:
            raise RuntimeError("BatchScanner requires a trained detector")
        # fail fast when the cascade is enabled but the pipeline carries no
        # trained head (raises RuntimeError), instead of on the first scan
        detector.cascade_head()
        if inference_batch_size < 1:
            raise ValueError("inference_batch_size must be >= 1")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.detector = detector
        if cache is not None:
            detector.pipeline.set_graph_cache(cache)
        self.cache = detector.pipeline.graph_cache
        self.max_workers = max_workers
        self.inference_batch_size = inference_batch_size
        self.shards = shards
        self._sharded = None
        if registry is not None:
            fingerprint = detector.config.graph_fingerprint()
            if registry.fingerprint and registry.fingerprint != fingerprint:
                raise ValueError(
                    f"registry fingerprint {registry.fingerprint!r} does "
                    f"not match this detector config's {fingerprint!r}; a "
                    f"fingerprint change must never serve stale verdicts"
                )
            registry.fingerprint = fingerprint
        self.registry = registry

    # ------------------------------------------------------------------ #
    # sharded path

    def _sharded_scanner(self):
        """Lazily build (and reuse) the worker pool behind ``shards >= 2``.

        The pool workers share this scanner's on-disk cache tier (when the
        attached :class:`GraphCache` has one), so a warm directory serves
        every shard.
        """
        if self._sharded is None:
            from repro.service.sharded import ShardedScanner

            cache_dir = None
            capacity = 1024
            if self.cache is not None:
                cache_dir = self.cache.disk_parent_dir
                capacity = self.cache.capacity
                if cache_dir is None:
                    # process memory cannot cross the pool boundary: a
                    # memory-only cache (warm or not) is invisible to the
                    # workers, which would silently re-lower everything
                    warnings.warn(
                        "BatchScanner(shards>1): the attached GraphCache "
                        "has no disk tier, so shard workers cannot share "
                        "it; build the cache with disk_dir=... to reuse "
                        "warm entries across shards",
                        stacklevel=3,
                    )
            self._sharded = ShardedScanner(
                self.detector,
                shards=self.shards,
                cache_dir=cache_dir,
                cache_capacity=capacity,
                inference_batch_size=self.inference_batch_size,
            )
        return self._sharded

    def close(self) -> None:
        """Shut down the sharded worker pool, if one was started."""
        if self._sharded is not None:
            self._sharded.close()
            self._sharded = None

    def __enter__(self) -> "BatchScanner":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------ #

    def scan_codes(
        self,
        codes: Iterable[BytecodeLike],
        platform: Optional[str] = None,
        sample_ids: Optional[Sequence[str]] = None,
    ) -> BatchScanResult:
        """Scan an iterable of bytecode inputs; reports keep input order."""
        raw_codes = [coerce_bytecode(code) for code in codes]
        if sample_ids is not None and len(sample_ids) != len(raw_codes):
            raise ValueError("sample_ids length must match codes")
        ids = (
            list(sample_ids)
            if sample_ids is not None
            else [
                f"contract-{index:04d}" for index in range(len(raw_codes))
            ]
        )
        return self._scan_raw(raw_codes, ids, platform)

    def scan_corpus(self, corpus) -> BatchScanResult:
        """Scan every sample of a corpus (corpus labels are ignored)."""
        samples = list(corpus)
        return self._scan_raw(
            [sample.bytecode for sample in samples],
            [sample.sample_id for sample in samples],
            platform=None,
            platforms=[sample.platform for sample in samples],
        )

    def scan_directory(
        self,
        directory: PathLike,
        pattern: str = "*",
        platform: Optional[str] = None,
        recursive: bool = True,
    ) -> BatchScanResult:
        """Scan every bytecode file under ``directory`` matching ``pattern``.

        ``.hex`` files are parsed as hex text (``0x`` prefix and line wraps
        allowed); everything else is read as raw binary.  Sample ids are the
        paths relative to ``directory``.  Hidden files, the graph cache's
        own files (``cache-meta.json``, ``*.npz``) and SQLite registries
        are skipped, so pointing this at a directory that also holds a
        cache tier or verdict registry is safe.  ``recursive=False``
        restricts the walk to the top level; ``pattern`` may contain ``/``
        to filter by subdirectory.

        A file that cannot be read, is empty, or (for ``.hex``) does not
        decode is *skipped with a warning* instead of aborting the whole
        batch -- one corrupt submission must not take down a triage run.
        Skipped files are listed in :attr:`BatchScanResult.skipped`.

        Raises:
            FileNotFoundError: If ``directory`` does not exist.
        """
        raw_codes, ids, skipped = collect_directory_inputs(
            directory, pattern, recursive=recursive
        )
        result = self._scan_raw(raw_codes, ids, platform)
        result.skipped = skipped
        return result

    # ------------------------------------------------------------------ #

    def _scan_raw(
        self,
        raw_codes: List[bytes],
        ids: List[str],
        platform: Optional[str],
        platforms: Optional[List[str]] = None,
    ) -> BatchScanResult:
        # obs root: one batch scan = one trace.  When an enclosing span is
        # already active on this thread (a server request, an ingest drain)
        # this nests as a child of that trace instead of starting a new one.
        with trace("batch.scan", root=True, contracts=len(raw_codes)):
            return self._scan_routed(raw_codes, ids, platform, platforms)

    def _scan_routed(
        self,
        raw_codes: List[bytes],
        ids: List[str],
        platform: Optional[str],
        platforms: Optional[List[str]] = None,
    ) -> BatchScanResult:
        if self.registry is None:
            return self._scan_fresh(raw_codes, ids, platform, platforms)
        # deferred import: repro.registry.watch imports this module, so a
        # top-level import here would be circular
        from repro.registry.store import content_sha256

        started = time.perf_counter()
        shas = [content_sha256(raw) for raw in raw_codes]
        # weight-level identity, not the architecture label: a retrained
        # model with identical hyper-parameters must never be served the
        # old model's verdicts -- and the identity also carries the active
        # cascade configuration, so tier-0 short-circuit verdicts are never
        # served to a GNN-only scan of the same bundle (or vice versa)
        identity = self.detector.model_identity()
        rows = self.registry.get_many(shas)
        hit_rows = {}
        miss: List[int] = []
        for index, sha in enumerate(shas):
            row = rows.get(sha)
            # a row is only reusable when it was produced by the very same
            # weights under the same explain setting -- anything else could
            # serve a stale score or mismatched notes
            if (
                row is not None
                and row.model_identity == identity
                and row.explained == self.detector.explain
            ):
                hit_rows[index] = row
            else:
                miss.append(index)
        fresh = self._scan_fresh(
            [raw_codes[index] for index in miss],
            [ids[index] for index in miss],
            platform,
            (
                [platforms[index] for index in miss]
                if platforms is not None
                else None
            ),
        )
        if miss:
            self.registry.record_many(
                [
                    (shas[index], report, ids[index])
                    for index, report in zip(miss, fresh.reports)
                ],
                explained=self.detector.explain,
                model_identity=identity,
            )
        result = BatchScanResult(
            num_workers=fresh.num_workers,
            batch_sizes=fresh.batch_sizes,
            cache_stats=fresh.cache_stats,
            shard_stats=fresh.shard_stats,
            registry_hits=len(hit_rows),
            cascade_stats=fresh.cascade_stats,
        )
        fresh_reports = iter(fresh.reports)
        threshold = self.detector.threshold
        for index in range(len(raw_codes)):
            row = hit_rows.get(index)
            if row is None:
                result.reports.append(next(fresh_reports))
                continue
            # rebind the caller's sample id and re-apply the *current*
            # threshold to the stored probability, exactly as build_report
            # would -- a threshold tweak must not require a re-scan
            report = row.to_report(sample_id=ids[index])
            report.label = int(report.malicious_probability >= threshold)
            result.reports.append(report)
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def _scan_fresh(
        self,
        raw_codes: List[bytes],
        ids: List[str],
        platform: Optional[str],
        platforms: Optional[List[str]] = None,
    ) -> BatchScanResult:
        if self.shards > 1 and raw_codes:
            return self._sharded_scanner()._scan_raw(
                raw_codes, ids, platform, platforms=platforms
            )
        pipeline = self.detector.pipeline
        stats_before = self._stats_snapshot()
        started = time.perf_counter()

        def resolve(index: int) -> str:
            if platforms is not None:
                return platforms[index]
            return platform or detect_platform(raw_codes[index])

        # tier 0: the cascade pre-filter (when enabled on the detector)
        # scores every contract from raw bytes and lets confident-benign
        # ones skip lowering + inference entirely
        decisions = None
        resolved_platforms: List[str] = []
        if raw_codes and self.detector.cascade:
            resolved_platforms = [
                resolve(index) for index in range(len(raw_codes))
            ]
            with trace("cascade.tier0", contracts=len(raw_codes)):
                decisions = self.detector.cascade_decide(
                    raw_codes, resolved_platforms
                )
        if decisions is None:
            escalated = list(range(len(raw_codes)))
            cascade_stats = None
        else:
            escalated = [
                index
                for index, decision in enumerate(decisions)
                if not decision.short_circuit
            ]
            cascade_stats = {
                "short_circuits": len(raw_codes) - len(escalated),
                "escalations": len(escalated),
                "disagreements": 0,
            }

        # captured before dispatch: lowering runs on executor threads that
        # have no span context of their own, so each task re-joins this
        # scan's trace explicitly (link="follows")
        lowering_parent = carrier()

        def lower(index: int) -> Tuple[ContractGraph, str]:
            resolved = (
                resolved_platforms[index]
                if decisions is not None
                else resolve(index)
            )
            with trace_from(lowering_parent, "lowering", sample=ids[index]):
                graph, resolved = pipeline.analyse_bytecode(
                    raw_codes[index], platform=resolved, sample_id=ids[index]
                )
            return graph, resolved

        if not escalated:
            lowered, num_workers = [], 0 if not raw_codes else 1
        elif self.max_workers is not None and self.max_workers <= 1:
            lowered = [lower(index) for index in escalated]
            num_workers = 1
        else:
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=self.max_workers
            ) as executor:
                lowered = list(executor.map(lower, escalated))
                num_workers = getattr(
                    executor, "_max_workers", self.max_workers or 1
                )

        graphs = [graph for graph, _ in lowered]
        probabilities: List[float] = []
        batch_sizes: Dict[int, int] = {}
        with trace("gnn.infer", graphs=len(graphs)):
            for chunk in pipeline._trainer.iter_predict_proba(
                graphs, batch_size=self.inference_batch_size
            ):
                batch_sizes[len(chunk)] = batch_sizes.get(len(chunk), 0) + 1
                probabilities.extend(float(row[1]) for row in chunk)

        result = BatchScanResult(
            num_workers=num_workers,
            batch_sizes=batch_sizes,
            cascade_stats=cascade_stats,
        )
        scored: Dict[int, object] = {}
        for position, index in enumerate(escalated):
            graph, resolved = lowered[position]
            report = self.detector.build_report(
                raw_codes[index],
                ids[index],
                resolved,
                probabilities[position],
                graph,
            )
            if (
                decisions is not None
                and report.label == 1
                and decisions[index].near_miss
            ):
                cascade_stats["disagreements"] += 1
            scored[index] = report
        for index in range(len(raw_codes)):
            if index in scored:
                result.reports.append(scored[index])
            else:
                result.reports.append(
                    self.detector.build_prefilter_report(
                        raw_codes[index],
                        ids[index],
                        resolved_platforms[index],
                        decisions[index].probability,
                    )
                )
        result.elapsed_seconds = time.perf_counter() - started
        result.cache_stats = self._stats_delta(stats_before)
        return result

    # ------------------------------------------------------------------ #

    def _stats_snapshot(self) -> CacheStats:
        if self.cache is None:
            return CacheStats()
        return self.cache.stats.copy()

    def _stats_delta(self, before: CacheStats) -> CacheStats:
        return self._stats_snapshot().delta(before)
