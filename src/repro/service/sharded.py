"""Multi-process sharded scan engine.

PRs 1-3 made scanning fast *within* one interpreter (content-addressed graph
cache, block-diagonal batched inference, request coalescing), but lowering --
disassembly, CFG recovery, feature extraction -- is pure CPU-bound Python, so
a single process caps the whole stack at one core.  :class:`ShardedScanner`
breaks that ceiling: it partitions work **by content hash** across a pool of
worker processes, each owning a full pipeline replica loaded once from a
persistence bundle, and merges the workers' quantized verdicts back into one
:class:`~repro.service.batch.BatchScanResult`.

Design points:

* **Hash partitioning.**  A contract always lands on the shard addressed by
  the SHA-256 of its bytecode, so repeated bytecode hits the same worker's
  in-memory cache, and the shard assignment is deterministic across runs.
* **Shared warm disk tier.**  All workers may point at one cache directory;
  the :class:`~repro.service.cache.GraphCache` disk tier publishes entries
  with atomic temp-file renames and treats unreadable entries as misses, so
  concurrent shards need no lock to share a warm cache.
* **Verdict parity.**  Workers score through the same
  :meth:`~repro.core.detector.ScamDetector.build_report` path as everything
  else; because scores are quantized there, sharded verdicts are
  byte-identical to single-process ``ScamDetector.scan`` verdicts no matter
  how the corpus is split.
* **Crash recovery.**  Chunks are executed *at least once* and merged
  *exactly once*: if a worker dies mid-batch its unacknowledged chunks are
  requeued onto a respawned replica (duplicated results are dropped by chunk
  id), so a killed worker loses time, never verdicts.  Respawns back off
  exponentially (``restart_backoff_s`` doubling per death) instead of
  burning CPU in a tight crash loop.
* **Quarantine over failure.**  A shard that keeps dying (a genuinely
  poisonous input, a broken replica) trips a per-shard
  :class:`~repro.resilience.breaker.CircuitBreaker` after ``max_restarts``
  respawns: the shard is quarantined and its hash-space rebalanced onto the
  healthy shards, so the batch completes degraded-but-correct.  Only when
  *no* healthy shard remains does the scan stop with a :class:`ShardError`.
  The scan server surfaces quarantines as ``status: "degraded"`` in
  ``/v1/healthz``.
* **Non-intrusive observability.**  Workers ship a tiny stats delta with
  every completed chunk (wall-clock, cache counters, batch histogram); the
  parent aggregates them into per-shard ``throughput_stats`` without ever
  touching the scoring hot path.

The pool speaks only picklable primitives (bytes, dataclasses of ints,
NumPy arrays), so it works under both ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import os
import pathlib
import queue as queue_module
import tempfile
import time
import traceback
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.detector import BytecodeLike, ScamDetector, coerce_bytecode
from repro.core.frontends import detect_platform
from repro.gnn.data import ContractGraph
from repro.obs.trace import (
    Tracer,
    active_tracer,
    arm as _arm_tracer,
    armed as _tracing_armed,
    carrier as _trace_carrier,
    trace_from,
)
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import (
    FAULT_CRASH_EXIT_CODE,
    FaultPlan,
    activate as _activate_faults,
    active_plan_dict,
    evaluate_fault,
    fault_point,
)
from repro.service.batch import (
    BatchScanResult,
    collect_directory_inputs,
    throughput_stats,
)
from repro.service.cache import CacheStats, GraphCache

PathLike = Union[str, pathlib.Path]

#: Exit code used by the fault-injection hooks (``crash_file`` and
#: ``crash``-kind :class:`~repro.resilience.faults.FaultSpec` entries).
_CRASH_EXIT_CODE = FAULT_CRASH_EXIT_CODE


class ShardError(RuntimeError):
    """A worker failed in a way the pool could not recover from."""


def shard_for_bytecode(raw: bytes, shards: int) -> int:
    """Deterministic shard index of ``raw``: SHA-256 prefix modulo
    ``shards``.

    Content addressing (rather than round-robin) keeps identical bytecode on
    one shard, so factory clones and re-submissions always hit that worker's
    warm in-memory cache.
    """
    digest = hashlib.sha256(raw).digest()
    return int.from_bytes(digest[:8], "big") % shards


# ------------------------------------------------------------------------- #
# worker process


def _graph_payload(graph: ContractGraph) -> Tuple:
    """Strip a graph to the picklable arrays a worker needs to re-score
    it."""
    return (
        np.asarray(graph.node_features),
        np.asarray(graph.adjacency),
        np.asarray(graph.normalized_adjacency),
        graph.platform,
    )


def _payload_graph(payload: Tuple) -> ContractGraph:
    node_features, adjacency, normalized, platform = payload
    return ContractGraph(
        node_features=node_features,
        adjacency=adjacency,
        normalized_adjacency=normalized,
        label=0,
        platform=platform,
    )


def _scan_chunk(
    detector: ScamDetector,
    cache: GraphCache,
    items: Sequence[Tuple],
    inference_batch_size: int,
):
    """Lower + score one chunk of ``(index, raw, platform, sample_id)``.

    When the replica's cascade is enabled, the worker runs the tier-0
    pre-filter locally: confident-benign contracts of the chunk skip
    lowering + inference and come back as ``stage: "prefilter"`` reports;
    the decision logic is the very same
    :meth:`~repro.core.detector.ScamDetector.cascade_decide` every other
    path uses, so sharded cascade verdicts match single-process ones.
    """
    started = time.perf_counter()
    before = cache.stats.copy()
    resolved_platforms = [
        platform or detect_platform(raw) for _, raw, platform, _ in items
    ]
    decisions = detector.cascade_decide(
        [raw for _, raw, _, _ in items], resolved_platforms
    )
    if decisions is None:
        escalated = list(range(len(items)))
        cascade_stats = None
    else:
        escalated = [
            position
            for position, decision in enumerate(decisions)
            if not decision.short_circuit
        ]
        cascade_stats = {
            "short_circuits": len(items) - len(escalated),
            "escalations": len(escalated),
            "disagreements": 0,
        }
    lowered = []
    for position in escalated:
        index, raw, _, sample_id = items[position]
        graph, resolved = detector.pipeline.analyse_bytecode(
            raw, platform=resolved_platforms[position], sample_id=sample_id
        )
        lowered.append((position, index, raw, resolved, sample_id, graph))
    graphs = [graph for *_, graph in lowered]
    probabilities: List[float] = []
    batch_sizes: Dict[int, int] = {}
    for chunk in detector.pipeline._trainer.iter_predict_proba(
        graphs, batch_size=inference_batch_size
    ):
        batch_sizes[len(chunk)] = batch_sizes.get(len(chunk), 0) + 1
        probabilities.extend(float(row[1]) for row in chunk)
    scored: Dict[int, object] = {}
    for (
        position,
        index,
        raw,
        resolved,
        sample_id,
        graph,
    ), probability in zip(lowered, probabilities):
        report = detector.build_report(
            raw, sample_id, resolved, probability, graph
        )
        if (
            decisions is not None
            and report.label == 1
            and decisions[position].near_miss
        ):
            cascade_stats["disagreements"] += 1
        scored[position] = report
    reports = []
    for position, (index, raw, _, sample_id) in enumerate(items):
        if position in scored:
            reports.append((index, scored[position]))
        else:
            reports.append(
                (
                    index,
                    detector.build_prefilter_report(
                        raw,
                        sample_id,
                        resolved_platforms[position],
                        decisions[position].probability,
                    ),
                )
            )
    stats = {
        "contracts": len(reports),
        "malicious": sum(1 for _, report in reports if report.is_malicious),
        "elapsed_seconds": time.perf_counter() - started,
        "cache": cache.stats.delta(before),
        "batch_sizes": batch_sizes,
        "cascade": cascade_stats,
    }
    return reports, stats


def _crash(result_queue) -> None:
    """Die like a crashed worker, without deadlocking the parent.

    ``os._exit`` alone can kill the queue's feeder thread mid-write,
    leaving a torn message in the result pipe; the parent's ``poll()``
    then sees readable data and its ``recv`` blocks forever.  Flushing
    the queue first keeps the injected crash deterministic *and*
    recoverable -- the already-completed results it flushes are exactly
    the ones the parent must ack before requeueing the rest.
    """
    result_queue.close()
    result_queue.join_thread()
    os._exit(_CRASH_EXIT_CODE)


def _shard_worker(
    shard_id: int, options: Dict, task_queue, result_queue
) -> None:
    """Worker main loop: load a pipeline replica once, then serve tasks.

    Messages back to the parent are ``(kind, shard_id, chunk_id, payload)``
    tuples; ``kind`` is ``ready``/``scan``/``infer``/``error``/``fatal``.

    When the parent had a fault plan active at spawn time the worker re-arms
    it locally (sites like ``cache.disk_*`` and ``shard.task`` then fire in
    this process too).  ``crash``-kind faults are *not* evaluated here: the
    parent's dispatch loop evaluates ``shard.worker.<id>`` and marks the
    dispatched task instead, so a plan-global ``max_fires`` bounds crashes
    across respawned replicas (a per-process schedule would re-arm on every
    respawn and crash-loop past ``max_restarts``).
    """
    try:
        plan_dict = options.get("fault_plan")
        if plan_dict:
            _activate_faults(FaultPlan.from_dict(plan_dict))
        # when the parent had tracing armed at spawn time, arm a local
        # buffering tracer: spans recorded in this process ride back to
        # the parent inside each chunk's stats payload (``spans`` key)
        worker_tracer = _arm_tracer(Tracer()) if options.get("trace") else None
        detector = ScamDetector.load(
            options["bundle_path"],
            threshold=options["threshold"],
            explain=options["explain"],
            cascade=options.get("cascade", False),
            cascade_margin=options.get("cascade_margin"),
        )
        # A cascade-enabled replica without a trained head is fatal at pool
        # start, not a per-chunk error storm.
        detector.cascade_head()
        cache = GraphCache.for_config(
            detector.config,
            capacity=options["cache_capacity"],
            disk_dir=options["cache_dir"],
        )
        detector.pipeline.set_graph_cache(cache)
    except BaseException:
        result_queue.put(("fatal", shard_id, None, traceback.format_exc()))
        return
    result_queue.put(("ready", shard_id, None, os.getpid()))
    crash_file = options.get("crash_file")
    while True:
        task = task_queue.get()
        if task is None:
            return
        kind, chunk_id, payload, crash, span_carrier = task
        if crash:
            # parent-side dispatch marked this task via an injected
            # ``shard.worker.<id>`` crash fault: die *after* dequeue,
            # exactly the window where work would be lost without
            # requeueing
            _crash(result_queue)
        if crash_file is not None and kind == "scan":
            # fault injection for the crash-recovery tests: the first
            # worker to consume the marker file dies *after* dequeuing its
            # chunk, exactly the window where work would be lost without
            # requeueing
            try:
                os.unlink(crash_file)
            except OSError:
                pass
            else:
                _crash(result_queue)
        try:
            fault_point("shard.task")
            if kind == "scan":
                # obs site shard.chunk: continues the parent's trace
                # across the process boundary (link="follows"); inner
                # sites (cache.lookup) nest under it as normal children
                with trace_from(
                    span_carrier,
                    "shard.chunk",
                    shard=shard_id,
                    items=len(payload),
                ):
                    chunk_result = _scan_chunk(
                        detector,
                        cache,
                        payload,
                        options["inference_batch_size"],
                    )
                if worker_tracer is not None:
                    chunk_result[1]["spans"] = worker_tracer.drain()
                result_queue.put(("scan", shard_id, chunk_id, chunk_result))
            elif kind == "infer":
                started = time.perf_counter()
                graphs = [_payload_graph(entry) for entry in payload]
                rows = detector.pipeline._trainer.predict_proba(
                    graphs, batch_size=max(1, len(graphs))
                )
                result_queue.put(
                    (
                        "infer",
                        shard_id,
                        chunk_id,
                        (
                            np.asarray(rows, dtype=np.float64),
                            time.perf_counter() - started,
                        ),
                    )
                )
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown task kind {kind!r}")
        except BaseException:
            result_queue.put(
                ("error", shard_id, chunk_id, traceback.format_exc())
            )


# ------------------------------------------------------------------------- #
# parent-side pool


@dataclass
class _ShardHandle:
    """Parent-side bookkeeping for one worker process."""

    shard_id: int
    process: multiprocessing.Process
    task_queue: object
    #: chunk_id -> task tuple, for requeueing if the worker dies
    tasks: Dict[int, Tuple] = field(default_factory=dict)
    restarts: int = 0
    #: monotonic deadline before which a dead worker is *not* respawned
    #: (exponential backoff); None = not currently scheduled for respawn
    respawn_after: Optional[float] = None
    #: True once the breaker opened for this shard; it stays down and its
    #: hash-space is served by the healthy shards
    quarantined: bool = False


@dataclass
class _ShardWindow:
    """Accumulated per-shard telemetry (scan + inference counters)."""

    contracts: int = 0
    malicious: int = 0
    elapsed_seconds: float = 0.0
    cache: CacheStats = field(default_factory=CacheStats)
    batch_sizes: Dict[int, int] = field(default_factory=dict)
    infer_calls: int = 0
    infer_graphs: int = 0
    infer_seconds: float = 0.0
    restarts: int = 0
    restart_backoff_s: float = 0.0
    quarantined: bool = False

    def absorb_scan(self, stats: Dict) -> None:
        self.contracts += stats["contracts"]
        self.malicious += stats["malicious"]
        self.elapsed_seconds += stats["elapsed_seconds"]
        self.cache = self.cache.merge(stats["cache"])
        for size, count in stats["batch_sizes"].items():
            self.batch_sizes[size] = self.batch_sizes.get(size, 0) + count

    def absorb_infer(self, num_graphs: int, seconds: float) -> None:
        self.infer_calls += 1
        self.infer_graphs += num_graphs
        self.infer_seconds += seconds

    def copy(self) -> "_ShardWindow":
        """Independent snapshot, for per-scan window deltas."""
        return _ShardWindow(
            contracts=self.contracts,
            malicious=self.malicious,
            elapsed_seconds=self.elapsed_seconds,
            cache=self.cache.copy(),
            batch_sizes=dict(self.batch_sizes),
            infer_calls=self.infer_calls,
            infer_graphs=self.infer_graphs,
            infer_seconds=self.infer_seconds,
            restarts=self.restarts,
            restart_backoff_s=self.restart_backoff_s,
            quarantined=self.quarantined,
        )

    def delta_stats(self, before: "_ShardWindow") -> Dict[str, object]:
        """One scan's per-shard entry: this window minus a snapshot, in the
        shared ``throughput_stats`` schema plus the restart counter."""
        sizes = {
            size: count - before.batch_sizes.get(size, 0)
            for size, count in self.batch_sizes.items()
            if count - before.batch_sizes.get(size, 0) > 0
        }
        entry = throughput_stats(
            self.contracts - before.contracts,
            self.malicious - before.malicious,
            self.elapsed_seconds - before.elapsed_seconds,
            self.cache.delta(before.cache),
            sizes,
        )
        entry["restarts"] = self.restarts - before.restarts
        entry["restart_backoff_s"] = (
            self.restart_backoff_s - before.restart_backoff_s
        )
        entry["quarantined"] = self.quarantined
        return entry

    def to_dict(self) -> Dict[str, object]:
        """Per-shard stats in the shared offline/online schema, plus the
        shard-only inference and restart counters."""
        stats = throughput_stats(
            self.contracts,
            self.malicious,
            self.elapsed_seconds,
            self.cache,
            self.batch_sizes,
        )
        stats["inference"] = {
            "calls": self.infer_calls,
            "graphs": self.infer_graphs,
            "seconds": self.infer_seconds,
            "mean_latency_ms": (
                self.infer_seconds / self.infer_calls * 1e3
                if self.infer_calls
                else 0.0
            ),
        }
        stats["restarts"] = self.restarts
        stats["restart_backoff_s"] = self.restart_backoff_s
        stats["quarantined"] = self.quarantined
        return stats


class ShardedScanner:
    """Scan driver that shards work across a process pool of replicas.

    Each worker process loads its own detector replica from a persistence
    bundle (written automatically when a live ``detector`` is given) and
    runs lowering plus batched GNN inference locally; the parent only
    partitions inputs, merges verdicts and aggregates telemetry.

    Args:
        detector: A trained detector to replicate.  It is saved once to a
            scanner-owned temp bundle; its ``threshold``/``explain`` settings
            apply to every worker, so sharded verdicts match what this very
            detector's ``scan`` would say.
        bundle_path: Alternative to ``detector``: replicate from an existing
            ``save()`` bundle (workers then use the explicit ``threshold`` /
            ``explain`` arguments).
        shards: Worker process count (>= 1).
        threshold: Decision threshold for bundle-loaded replicas.
        explain: Attach indicator notes in bundle-loaded replicas.
        cache_dir: Optional directory for the shared on-disk graph cache
            tier.  Safe to share across shards and across runs (atomic
            writes); omit for per-worker in-memory caches only.
        cache_capacity: In-memory cache entries per worker.
        inference_batch_size: Graphs per batched model call inside a worker.
        chunk_size: Contracts per dispatched work unit.  Smaller chunks
            spread a skewed corpus more evenly and shrink the requeue window
            after a crash; larger chunks amortise IPC.
        start_method: ``multiprocessing`` start method (default: ``fork``
            where available, else the platform default).
        max_restarts: Respawns allowed per shard before its circuit opens
            and the shard is quarantined (its hash-space is rebalanced onto
            the healthy shards); the scan only fails when no healthy shard
            remains.
        restart_backoff_s: Base respawn backoff; each further death of the
            same shard doubles it.  Non-blocking: the dispatch loop keeps
            draining results from the other shards while a respawn waits.
        crash_file: Fault-injection hook for tests -- when this file exists,
            the first worker to dequeue a scan chunk unlinks it and dies
            hard (``os._exit``), exercising the requeue path.
        cascade: Enable the tier-0 pre-filter in bundle-loaded replicas
            (the bundle must carry a trained cascade head).  Ignored when a
            live ``detector`` is given: its ``cascade``/``cascade_margin``
            settings are replicated instead, like ``threshold``/``explain``.
        cascade_margin: Safety margin override for bundle-loaded replicas;
            ``None`` keeps each head's trained margin.

    Use as a context manager (or call :meth:`close`) to release the pool;
    the pool starts lazily on first use and survives across scans, so the
    bundle-load cost is paid once, not per call.
    """

    def __init__(
        self,
        detector: Optional[ScamDetector] = None,
        *,
        bundle_path: Optional[PathLike] = None,
        shards: int = 2,
        threshold: float = 0.5,
        explain: bool = False,
        cache_dir: Optional[PathLike] = None,
        cache_capacity: int = 1024,
        inference_batch_size: int = 256,
        chunk_size: int = 16,
        start_method: Optional[str] = None,
        max_restarts: int = 3,
        restart_backoff_s: float = 0.1,
        crash_file: Optional[PathLike] = None,
        cascade: bool = False,
        cascade_margin: Optional[float] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if (detector is None) == (bundle_path is None):
            raise ValueError("pass exactly one of detector / bundle_path")
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        if detector is not None:
            if not detector.is_trained:
                raise RuntimeError(
                    "ShardedScanner requires a trained detector"
                )
            # Fail fast in the parent: a cascade-enabled detector without a
            # trained head would otherwise only surface from worker load.
            detector.cascade_head()
            self._tempdir = tempfile.TemporaryDirectory(
                prefix="scamdetect-shards-"
            )
            bundle_path = pathlib.Path(self._tempdir.name) / "replica"
            detector.save(bundle_path)
            threshold = detector.threshold
            explain = detector.explain
            cascade = detector.cascade
            cascade_margin = detector.cascade_margin
        self.shards = shards
        self.chunk_size = chunk_size
        self.inference_batch_size = inference_batch_size
        self.max_restarts = max_restarts
        self.restart_backoff_s = restart_backoff_s
        self._options = {
            "bundle_path": str(bundle_path),
            "threshold": threshold,
            "explain": explain,
            "cascade": bool(cascade),
            "cascade_margin": cascade_margin,
            "cache_dir": str(cache_dir) if cache_dir is not None else None,
            "cache_capacity": cache_capacity,
            "inference_batch_size": inference_batch_size,
            "crash_file": (
                str(crash_file) if crash_file is not None else None
            ),
        }
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else available[0]
        self._context = multiprocessing.get_context(start_method)
        self._result_queue = None
        self._handles: List[_ShardHandle] = []
        self._windows = [_ShardWindow() for _ in range(shards)]
        self._chunk_counter = itertools.count()
        self._rr_counter = itertools.count()
        self._breaker = CircuitBreaker(failure_threshold=max_restarts + 1)
        self._quarantined: set = set()
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle

    @property
    def started(self) -> bool:
        return bool(self._handles)

    @property
    def restarts(self) -> int:
        """Total worker respawns over the pool's lifetime."""
        return sum(window.restarts for window in self._windows)

    @property
    def degraded(self) -> bool:
        """True when at least one shard is quarantined (serving continues
        on the healthy shards; ``/v1/healthz`` reports ``"degraded"``)."""
        return bool(self._quarantined)

    @property
    def quarantined_shards(self) -> List[int]:
        return sorted(self._quarantined)

    def _active_shards(self) -> List[int]:
        return [
            shard_id
            for shard_id in range(self.shards)
            if shard_id not in self._quarantined
        ]

    def _route(self, shard_id: int) -> int:
        """Remap a quarantined shard's hash-space onto a healthy shard,
        deterministically (same quarantine set -> same routing)."""
        if shard_id not in self._quarantined:
            return shard_id
        active = self._active_shards()
        return active[shard_id % len(active)]

    def start(self) -> "ShardedScanner":
        """Spawn the worker pool and wait until every replica is loaded.

        Idempotent; scans call it implicitly.  Separating start from the
        first scan lets benchmarks exclude replica-load time from
        throughput windows.
        """
        if self._closed:
            raise ShardError("ShardedScanner is closed")
        if self._handles:
            return self
        self._result_queue = self._context.Queue()
        self._handles = [
            self._spawn(shard_id) for shard_id in range(self.shards)
        ]
        ready = set()
        deadline = time.monotonic() + 120.0
        while len(ready) < self.shards:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.close()
                raise ShardError(
                    "timed out waiting for shard workers to "
                    "load their pipeline replicas"
                )
            try:
                kind, shard_id, _, payload = self._result_queue.get(
                    timeout=min(remaining, 0.5)
                )
            except queue_module.Empty:
                for handle in self._handles:
                    # a replica that died without managing a 'fatal'
                    # message (OOM-kill, SIGKILL mid-load) would otherwise
                    # stall start() for the whole deadline
                    if (
                        handle.shard_id not in ready
                        and not handle.process.is_alive()
                    ):
                        exitcode = handle.process.exitcode
                        self.close()
                        raise ShardError(
                            f"shard {handle.shard_id} worker died during "
                            f"replica load (exit code {exitcode})"
                        )
                continue
            if kind == "fatal":
                self.close()
                raise ShardError(
                    f"shard {shard_id} failed to initialise:\n{payload}"
                )
            if kind == "ready":
                ready.add(shard_id)
        return self

    def _spawn(self, shard_id: int) -> _ShardHandle:
        task_queue = self._context.Queue()
        # captured per spawn, not per pool: a fault plan armed after
        # construction (e.g. via the CLI's --fault-plan) still reaches the
        # workers, and respawned replicas re-arm the same plan
        options = dict(self._options)
        options["fault_plan"] = active_plan_dict()
        # like the fault plan: tracing armed after construction still
        # reaches the workers, and respawned replicas re-arm it
        options["trace"] = _tracing_armed()
        process = self._context.Process(
            target=_shard_worker,
            args=(shard_id, options, task_queue, self._result_queue),
            name=f"scamdetect-shard-{shard_id}",
            daemon=True,
        )
        process.start()
        return _ShardHandle(
            shard_id=shard_id, process=process, task_queue=task_queue
        )

    def close(self) -> None:
        """Stop the workers and release queues/bundle; idempotent."""
        self._closed = True
        for handle in self._handles:
            try:
                handle.task_queue.put(None)
            except (OSError, ValueError):
                pass
        for handle in self._handles:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
        for handle in self._handles:
            handle.task_queue.close()
            handle.task_queue.cancel_join_thread()
        if self._result_queue is not None:
            self._result_queue.close()
            self._result_queue.cancel_join_thread()
            self._result_queue = None
        self._handles = []
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def __enter__(self) -> "ShardedScanner":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback_) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown effort
        try:
            if self._handles:
                self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # scanning entry points (mirror BatchScanner)

    def scan_codes(
        self,
        codes: Iterable[BytecodeLike],
        platform: Optional[str] = None,
        sample_ids: Optional[Sequence[str]] = None,
    ) -> BatchScanResult:
        """Scan an iterable of bytecode inputs; reports keep input order."""
        raw_codes = [coerce_bytecode(code) for code in codes]
        if sample_ids is not None and len(sample_ids) != len(raw_codes):
            raise ValueError("sample_ids length must match codes")
        ids = (
            list(sample_ids)
            if sample_ids is not None
            else [
                f"contract-{index:04d}" for index in range(len(raw_codes))
            ]
        )
        return self._scan_raw(raw_codes, ids, platform)

    def scan_corpus(self, corpus) -> BatchScanResult:
        """Scan every sample of a corpus (corpus labels are ignored)."""
        samples = list(corpus)
        return self._scan_raw(
            [sample.bytecode for sample in samples],
            [sample.sample_id for sample in samples],
            platform=None,
            platforms=[sample.platform for sample in samples],
        )

    def scan_directory(
        self,
        directory: PathLike,
        pattern: str = "*",
        platform: Optional[str] = None,
        recursive: bool = True,
    ) -> BatchScanResult:
        """Scan a directory tree (same file rules as ``BatchScanner``)."""
        raw_codes, ids, skipped = collect_directory_inputs(
            directory, pattern, recursive=recursive
        )
        result = self._scan_raw(raw_codes, ids, platform)
        result.skipped = skipped
        return result

    # ------------------------------------------------------------------ #

    def _scan_raw(
        self,
        raw_codes: List[bytes],
        ids: List[str],
        platform: Optional[str],
        platforms: Optional[List[str]] = None,
    ) -> BatchScanResult:
        started = time.perf_counter()
        if not raw_codes:
            return BatchScanResult(num_workers=self.shards)
        self.start()
        per_shard: List[List[Tuple]] = [[] for _ in range(self.shards)]
        for index, raw in enumerate(raw_codes):
            resolved = (
                platforms[index] if platforms is not None else platform
            )
            per_shard[shard_for_bytecode(raw, self.shards)].append(
                (index, raw, resolved, ids[index])
            )
        assignments = []
        for shard_id, items in enumerate(per_shard):
            for start in range(0, len(items), self.chunk_size):
                assignments.append(
                    (
                        shard_id,
                        "scan",
                        items[start : start + self.chunk_size],
                    )
                )
        windows_before = [window.copy() for window in self._windows]
        outputs = self._run_tasks(assignments)

        reports: List = [None] * len(raw_codes)
        merged_cache = CacheStats()
        batch_sizes: Dict[int, int] = {}
        cascade_stats: Optional[Dict[str, int]] = None
        for shard_id, chunk_reports, stats in outputs:
            for index, report in chunk_reports:
                reports[index] = report
            # worker-recorded spans (shard.chunk + its children) ride
            # back in the stats payload; re-emit them into the parent's
            # tracer so one JSONL file holds the whole cross-process trace
            worker_spans = stats.pop("spans", None)
            if worker_spans:
                tracer = active_tracer()
                if tracer is not None:
                    tracer.emit_many(worker_spans)
            merged_cache = merged_cache.merge(stats["cache"])
            for size, count in stats["batch_sizes"].items():
                batch_sizes[size] = batch_sizes.get(size, 0) + count
            chunk_cascade = stats.get("cascade")
            if chunk_cascade is not None:
                if cascade_stats is None:
                    cascade_stats = {
                        "short_circuits": 0,
                        "escalations": 0,
                        "disagreements": 0,
                    }
                for key, value in chunk_cascade.items():
                    cascade_stats[key] = cascade_stats.get(key, 0) + value
            self._windows[shard_id].absorb_scan(stats)
        missing = [
            ids[i] for i, report in enumerate(reports) if report is None
        ]
        if missing:  # pragma: no cover - requeueing prevents this
            raise ShardError(
                f"sharded scan lost {len(missing)} "
                f"contracts: {missing[:5]}"
            )

        result = BatchScanResult(
            num_workers=self.shards,
            batch_sizes=batch_sizes,
            cascade_stats=cascade_stats,
        )
        result.reports = reports
        result.cache_stats = merged_cache
        result.elapsed_seconds = time.perf_counter() - started
        result.shard_stats = {
            f"shard-{shard_id}": window.delta_stats(
                windows_before[shard_id]
            )
            for shard_id, window in enumerate(self._windows)
        }
        return result

    # ------------------------------------------------------------------ #
    # inference-only dispatch (used by the scan server's coalescer)

    def infer(
        self,
        graphs: Sequence[ContractGraph],
        batch_size: Optional[int] = None,
    ) -> np.ndarray:
        """Score already-lowered graphs on the pool; rows keep input order.

        Micro-batches of ``batch_size`` graphs are dispatched round-robin
        (inference has no cache affinity to preserve), which is how the
        scan server's :class:`~repro.service.server.RequestCoalescer`
        spreads coalesced batches across shards.
        """
        if not len(graphs):
            return np.zeros((0, 2))
        self.start()
        size = batch_size or self.inference_batch_size
        assignments = []
        spans = []
        for start in range(0, len(graphs), size):
            chunk = graphs[start : start + size]
            active = self._active_shards()
            shard_id = active[next(self._rr_counter) % len(active)]
            assignments.append(
                (
                    shard_id,
                    "infer",
                    [_graph_payload(graph) for graph in chunk],
                )
            )
            spans.append((start, len(chunk)))
        outputs = self._run_tasks(assignments)
        width = outputs[0][1].shape[1] if outputs else 2
        rows = np.zeros((len(graphs), width))
        for (shard_id, shard_rows, seconds), (start, count) in zip(
            outputs, spans
        ):
            rows[start : start + count] = shard_rows
            self._windows[shard_id].absorb_infer(count, seconds)
        return rows

    # ------------------------------------------------------------------ #
    # dispatch/collect core with crash recovery

    def _run_tasks(
        self, assignments: Sequence[Tuple[int, str, object]]
    ) -> List[Tuple]:
        """Run ``(shard_id, kind, payload)`` tasks; returns per-assignment
        ``(executing_shard_id, *payload)`` results in assignment order.

        Execution is at-least-once, merging exactly-once: a dead worker is
        respawned with a fresh queue and its unacknowledged chunks are
        redispatched; results for chunks already merged are dropped.
        """
        order: List[int] = []
        pending: Dict[int, int] = {}
        results: Dict[int, Tuple] = {}
        for shard_id, kind, payload in assignments:
            shard_id = self._route(shard_id)
            chunk_id = next(self._chunk_counter)
            # crash faults are evaluated here, parent-side, so the plan's
            # schedule (after / max_fires) is global across worker
            # respawns; the marked task kills its worker right after
            # dequeue
            spec = evaluate_fault(f"shard.worker.{shard_id}")
            crash = spec is not None and spec.kind == "crash"
            task = (kind, chunk_id, payload, crash, _trace_carrier())
            handle = self._handles[shard_id]
            handle.tasks[chunk_id] = task
            pending[chunk_id] = shard_id
            order.append(chunk_id)
            handle.task_queue.put(task)
        while pending:
            try:
                message = self._result_queue.get(timeout=0.1)
            except queue_module.Empty:
                try:
                    self._heal_workers()
                except ShardError:
                    self._abandon(pending)
                    raise
                continue
            kind, shard_id, chunk_id, payload = message
            if kind == "ready":
                continue
            if kind == "fatal":
                self._abandon(pending)
                raise ShardError(
                    f"shard {shard_id} replica failed to "
                    f"reload after a crash:\n{payload}"
                )
            if chunk_id not in pending:
                continue  # duplicate answer for a requeued chunk
            if kind == "error":
                self._abandon(pending)
                raise ShardError(f"shard {shard_id} failed:\n{payload}")
            if kind == "scan":
                chunk_reports, stats = payload
                results[chunk_id] = (shard_id, chunk_reports, stats)
            else:  # infer
                rows, seconds = payload
                results[chunk_id] = (shard_id, rows, seconds)
            del pending[chunk_id]
            self._handles[shard_id].tasks.pop(chunk_id, None)
        return [results[chunk_id] for chunk_id in order]

    def _abandon(self, pending: Dict[int, int]) -> None:
        """Forget a failed run's outstanding chunks (stale results for them
        are already ignored by the ``chunk_id not in pending`` check)."""
        for handle in self._handles:
            for chunk_id in list(pending):
                handle.tasks.pop(chunk_id, None)
        pending.clear()

    def _heal_workers(self) -> None:
        """Notice dead workers; quarantine repeat offenders, respawn the
        rest after an exponential backoff.

        Called from the result loop's poll timeout, so backoff never
        blocks: while one shard waits out its backoff the loop keeps
        draining results from the others.  Each death is recorded once on
        the shard's circuit; the death that opens the circuit quarantines
        the shard instead of respawning it (see :meth:`_quarantine`).
        """
        now = time.monotonic()
        for index, handle in enumerate(self._handles):
            if handle.quarantined or handle.process.is_alive():
                continue
            if handle.respawn_after is None:
                # first notice of this death: count it, then either
                # quarantine (circuit opened) or schedule the respawn
                if self._breaker.record_failure(handle.shard_id):
                    self._quarantine(index)
                    continue
                backoff = self.restart_backoff_s * (2**handle.restarts)
                handle.respawn_after = now + backoff
                self._windows[handle.shard_id].restart_backoff_s += backoff
                warnings.warn(
                    f"shard {handle.shard_id} worker died (exit code "
                    f"{handle.process.exitcode}); respawning and "
                    f"requeueing {len(handle.tasks)} chunk(s) after "
                    f"{backoff:.2f}s backoff",
                    stacklevel=3,
                )
                continue
            if now < handle.respawn_after:
                continue
            # a fresh queue avoids ever reading a byte stream the dead
            # worker may have been mid-way through consuming
            old_queue = handle.task_queue
            replacement = self._spawn(handle.shard_id)
            replacement.restarts = handle.restarts + 1
            # workers consume their queue in chunk-id order and die at the
            # first crash-marked task, so that mark (already spent from the
            # plan's max_fires budget) is stripped on requeue; later marks
            # stay, keeping multi-crash schedules deterministic
            tasks = dict(handle.tasks)
            for chunk_id in sorted(tasks):
                kind, chunk_id_, payload, crash, span_carrier = tasks[
                    chunk_id
                ]
                if crash:
                    tasks[chunk_id] = (
                        kind, chunk_id_, payload, False, span_carrier
                    )
                    break
            replacement.tasks = tasks
            for chunk_id in sorted(replacement.tasks):
                replacement.task_queue.put(replacement.tasks[chunk_id])
            self._handles[index] = replacement
            self._windows[handle.shard_id].restarts += 1
            old_queue.close()
            old_queue.cancel_join_thread()

    def _quarantine(self, index: int) -> None:
        """Take a repeatedly-dying shard out of service and rebalance its
        unacknowledged chunks onto the healthy shards.

        Raises :class:`ShardError` only when no healthy shard remains to
        absorb the work -- otherwise the scan degrades instead of failing,
        and ``/v1/healthz`` flips to ``"degraded"``.
        """
        handle = self._handles[index]
        shard_id = handle.shard_id
        deaths = handle.restarts + 1
        healthy = [
            peer
            for peer in self._handles
            if peer.shard_id != shard_id and not peer.quarantined
        ]
        if not healthy:
            raise ShardError(
                f"shard {shard_id} died {deaths} times (exit code "
                f"{handle.process.exitcode}); giving up -- no healthy "
                f"shard left to absorb its work"
            )
        handle.quarantined = True
        self._quarantined.add(shard_id)
        self._windows[shard_id].quarantined = True
        warnings.warn(
            f"shard {shard_id} died {deaths} times (exit code "
            f"{handle.process.exitcode}); quarantining it and rebalancing "
            f"{len(handle.tasks)} chunk(s) onto {len(healthy)} healthy "
            f"shard(s) -- serving degraded",
            stacklevel=4,
        )
        for chunk_id in sorted(handle.tasks):
            kind, _, payload, _, span_carrier = handle.tasks.pop(chunk_id)
            target = healthy[chunk_id % len(healthy)]
            task = (kind, chunk_id, payload, False, span_carrier)
            target.tasks[chunk_id] = task
            target.task_queue.put(task)

    # ------------------------------------------------------------------ #
    # telemetry

    def shard_stats_dict(self) -> Dict[str, Dict[str, object]]:
        """Lifetime per-shard telemetry (scan + inference + restarts).

        The scan server surfaces this under ``GET /v1/metrics`` as the
        ``shards`` section; each entry reuses the shared
        :func:`~repro.service.batch.throughput_stats` schema plus
        ``inference`` latency counters and the shard's ``restarts``.
        """
        return {
            f"shard-{shard_id}": window.to_dict()
            for shard_id, window in enumerate(self._windows)
        }
