"""Scanning service layer: batch offline scans and the live scan server.

This package turns the one-shot :class:`~repro.core.detector.ScamDetector`
into a service that can sustain repeated, high-volume scanning workloads:

* :mod:`repro.service.cache` -- a content-addressed graph cache keyed by
  SHA-256 of the bytecode plus the config's graph fingerprint, with an
  in-memory LRU tier and an optional on-disk ``.npz`` tier.
* :mod:`repro.service.batch` -- :class:`BatchScanner`, which lowers a corpus
  or a directory of bytecode files in parallel worker threads and feeds the
  resulting graphs to the GNN in batches.
* :mod:`repro.service.server` -- :class:`ScanServer`, a long-running HTTP
  daemon whose :class:`~repro.service.server.RequestCoalescer` micro-batches
  concurrent scan requests into single block-diagonal inference calls, and
  :class:`ServerClient` (defined here), the stdlib client used by the tests,
  the examples and the CI smoke test.  The HTTP API is versioned under
  ``/v1/``; the client targets the versioned paths and surfaces the
  server's error envelope as typed :class:`ServerClientError` values.
* :mod:`repro.service.sharded` -- :class:`ShardedScanner`, a multi-process
  engine that partitions scans by content hash across pipeline replicas
  (one per worker process), shares the warm disk cache tier between shards
  via atomic writes, and recovers from killed workers by requeueing their
  unacknowledged chunks.  ``BatchScanner(shards=N)`` and
  ``ScanServer(shards=N)`` route through it.

The service layer plugs into the existing stack through the pipeline's
``graph_cache`` hook, so training, evaluation and single-contract scans all
benefit from warm caches without any API change.
"""

import json as _json
import urllib.error as _urllib_error
import urllib.parse as _urllib_parse
import urllib.request as _urllib_request
from base64 import b64encode as _b64encode
from typing import Iterable, Optional, Sequence, Union

from repro.core.detector import coerce_bytecode as _coerce_bytecode
from repro.resilience.retry import RetryPolicy as _RetryPolicy
from repro.service.batch import BatchScanner, BatchScanResult, throughput_stats
from repro.service.cache import CacheStats, GraphCache
from repro.service.server import (
    API_PREFIX,
    DEFAULT_PORT,
    RequestCoalescer,
    ScanServer,
    ServerMetrics,
    ServerOverloaded,
    ServerShuttingDown,
)
from repro.service.sharded import ShardedScanner, ShardError, shard_for_bytecode

__all__ = [
    "GraphCache",
    "CacheStats",
    "BatchScanner",
    "BatchScanResult",
    "throughput_stats",
    "ScanServer",
    "RequestCoalescer",
    "ServerMetrics",
    "ServerOverloaded",
    "ServerShuttingDown",
    "ServerClient",
    "ServerClientError",
    "ShardedScanner",
    "ShardError",
    "shard_for_bytecode",
    "API_PREFIX",
    "DEFAULT_PORT",
]

#: Default client-side retry: connection errors and 503s are retried a
#: couple of times under a short deadline, so one transient server fault
#: (an injected one included) never surfaces to the caller.
DEFAULT_CLIENT_RETRY = _RetryPolicy(
    max_attempts=3,
    base_delay_s=0.05,
    max_delay_s=1.0,
    deadline_s=5.0,
)


class ServerClientError(RuntimeError):
    """An HTTP-level error returned by the scan server.

    Attributes:
        status: HTTP status code (0 when the server was unreachable).
        code: The machine-readable slug from the server's error envelope
            (``"overloaded"``, ``"no_registry"``, ...); ``"unreachable"``
            for connection failures, ``"error"`` when the server sent no
            recognizable envelope.
        retry_after: The backoff hint of a 503 in seconds, parsed from the
            ``Retry-After`` header or the envelope's ``retry_after`` field
            (None when absent) -- the client's retry loop honors it.
    """

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
        code: str = "error",
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.retry_after = retry_after


class ServerClient:
    """Minimal stdlib client for :class:`~repro.service.server.ScanServer`.

    Used by the test suite, ``examples/scan_server_client.py`` and the CI
    smoke test; application code can use it too, or speak the (plain JSON
    over HTTP) protocol directly -- see the curl examples in the README.
    All requests target the versioned ``/v1/`` paths.

    Args:
        host: Server host.
        port: Server port (``ScanServer.port`` tells the bound one).
        timeout: Per-request socket timeout in seconds.
        retry: Retry policy for transient failures -- connection errors
            (status 0) and 503s, the two shapes a briefly-unavailable or
            overloaded server produces.  A 503's ``Retry-After`` header
            overrides the policy's computed backoff.  Pass
            ``RetryPolicy(max_attempts=1)`` to disable retries.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 30.0,
        retry: Optional[_RetryPolicy] = None,
    ) -> None:
        self.base_url = f"http://{host}:{port}"
        self.timeout = timeout
        self.retry = retry if retry is not None else DEFAULT_CLIENT_RETRY
        #: transient failures retried away over this client's lifetime
        self.retries = 0

    # -------------------------------------------------------------- #

    @staticmethod
    def _is_transient(error: BaseException) -> bool:
        return isinstance(error, ServerClientError) and error.status in (
            0,
            503,
        )

    @staticmethod
    def _mandated_wait(error: BaseException) -> Optional[float]:
        if isinstance(error, ServerClientError):
            return error.retry_after
        return None

    def _count_retry(
        self, attempt: int, error: BaseException, delay: float
    ) -> None:
        self.retries += 1

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        body: Optional[bytes] = None,
        content_type: str = "application/json",
    ) -> dict:
        return self.retry.call(
            lambda: self._request_once(
                method, path, payload, body=body, content_type=content_type
            ),
            retry_on=(ServerClientError,),
            should_retry=self._is_transient,
            retry_after=self._mandated_wait,
            on_retry=self._count_retry,
        )

    def _request_once(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        body: Optional[bytes] = None,
        content_type: str = "application/json",
    ) -> dict:
        data = body
        if data is None:
            data = (
                _json.dumps(payload).encode("utf-8")
                if payload is not None
                else None
            )
        request = _urllib_request.Request(
            self.base_url + API_PREFIX + path,
            data=data,
            method=method,
            headers={"Content-Type": content_type},
        )
        try:
            with _urllib_request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return _json.loads(response.read().decode("utf-8"))
        except _urllib_error.HTTPError as error:
            body = error.read().decode("utf-8", errors="replace")
            message, code, envelope_wait = self._parse_error(body)
            header = error.headers.get("Retry-After")
            try:
                retry_after = float(header) if header is not None else None
            except ValueError:
                retry_after = None
            if retry_after is None:
                retry_after = envelope_wait
            raise ServerClientError(
                error.code,
                message,
                retry_after=retry_after,
                code=code,
            ) from error
        except _urllib_error.URLError as error:
            raise ServerClientError(
                0,
                f"scan server unreachable at {self.base_url}: "
                f"{error.reason}",
                code="unreachable",
            ) from error

    @staticmethod
    def _parse_error(body: str):
        """Decode the ``{"error": {code, message, retry_after}}`` envelope.

        Returns ``(message, code, retry_after)``; a legacy flat
        ``{"error": "..."}`` body or plain text degrades to the raw string
        with code ``"error"``.
        """
        try:
            envelope = _json.loads(body).get("error", body)
        except (ValueError, AttributeError):
            return body, "error", None
        if isinstance(envelope, dict):
            message = str(envelope.get("message", body))
            code = str(envelope.get("code", "error"))
            wait = envelope.get("retry_after")
            try:
                retry_after = float(wait) if wait is not None else None
            except (TypeError, ValueError):
                retry_after = None
            return message, code, retry_after
        return str(envelope), "error", None

    @staticmethod
    def _encode(code: Union[bytes, bytearray, str], encoding: str) -> str:
        """Encode ``code`` for transport under ``encoding``.

        A ``str`` input always means *hex bytecode text* (``0x`` prefix and
        whitespace allowed); it is normalized to raw bytes first so that
        requesting base64 transport re-encodes the same bytes instead of
        shipping hex digits that the server would misread as base64.
        """
        raw = _coerce_bytecode(code) if isinstance(code, str) else bytes(code)
        if encoding == "base64":
            return _b64encode(raw).decode("ascii")
        return raw.hex()

    # -------------------------------------------------------------- #

    def healthz(self) -> dict:
        """``GET /v1/healthz`` -- raises :class:`ServerClientError` if
        down."""
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        """``GET /v1/metrics`` -- the server's live counters."""
        return self._request("GET", "/metrics")

    def verdicts(
        self,
        cursor: Optional[str] = None,
        page_size: Optional[int] = None,
        **filters,
    ) -> dict:
        """``GET /v1/verdicts`` over the server's persistent registry.

        Keyword filters mirror
        :meth:`repro.registry.store.ScanRegistry.query`: ``verdict``,
        ``min_score``, ``max_score``, ``platform``, ``since``, ``until``,
        ``path_glob``, ``tag``, ``sha256_prefix``.  Pagination is
        keyset-based: the response's ``next_cursor`` (null on the last
        page) feeds the next call's ``cursor=``.  Raises
        :class:`ServerClientError` (503, code ``no_registry``) when no
        registry is attached.
        """
        query = {
            key: str(value)
            for key, value in filters.items()
            if value is not None
        }
        if cursor is not None:
            query["cursor"] = cursor
        if page_size is not None:
            query["page_size"] = str(page_size)
        path = "/verdicts"
        if query:
            path += "?" + _urllib_parse.urlencode(query)
        return self._request("GET", path)

    def verdicts_all(self, page_size: int = 200, **filters) -> list:
        """Every matching verdict row, walking ``next_cursor`` to the end."""
        rows: list = []
        cursor: Optional[str] = None
        while True:
            page = self.verdicts(
                cursor=cursor, page_size=page_size, **filters
            )
            rows.extend(page["verdicts"])
            cursor = page.get("next_cursor")
            if not cursor:
                return rows

    def verdict(self, sha256: str) -> dict:
        """``GET /v1/verdicts/<sha256>`` -- one stored verdict + history."""
        return self._request("GET", f"/verdicts/{sha256}")

    def scan(
        self,
        code: Union[bytes, bytearray, str],
        platform: Optional[str] = None,
        sample_id: str = "contract",
        encoding: str = "hex",
    ) -> dict:
        """``POST /v1/scan`` one contract; returns the verdict report dict.

        ``code`` may be raw bytes (encoded for transport per ``encoding``)
        or an already-hex string.
        """
        payload = {
            "bytecode": self._encode(code, encoding),
            "encoding": encoding,
            "sample_id": sample_id,
        }
        if platform is not None:
            payload["platform"] = platform
        return self._request("POST", "/scan", payload)

    def scan_batch(
        self,
        codes: Iterable[Union[bytes, bytearray, str]],
        platform: Optional[str] = None,
        sample_ids: Optional[Sequence[str]] = None,
        encoding: str = "hex",
    ) -> dict:
        """``POST /v1/scan-batch`` many contracts in one request."""
        codes = list(codes)
        if sample_ids is not None and len(sample_ids) != len(codes):
            raise ValueError(
                f"sample_ids length ({len(sample_ids)}) must "
                f"match codes length ({len(codes)})"
            )
        contracts = []
        for index, code in enumerate(codes):
            entry = {
                "bytecode": self._encode(code, encoding),
                "encoding": encoding,
            }
            if sample_ids is not None:
                entry["sample_id"] = sample_ids[index]
            contracts.append(entry)
        payload: dict = {"contracts": contracts}
        if platform is not None:
            payload["platform"] = platform
        return self._request("POST", "/scan-batch", payload)

    def ingest(
        self,
        codes: Iterable[Union[bytes, bytearray, str]],
        platform: Optional[str] = None,
        sample_ids: Optional[Sequence[str]] = None,
        encoding: str = "hex",
        ndjson: bool = False,
    ) -> dict:
        """``POST /v1/ingest`` -- push bytecode into the server's ingest
        queue (fire-and-forget: verdicts land in the registry, not in the
        response).

        Returns the 202 body: ``{"accepted", "deduped", "rejected",
        "queue_depth"}``.  A full queue answers 503 + ``Retry-After``,
        which this client's retry loop honors like any other overload;
        with retries exhausted the :class:`ServerClientError` (code
        ``"overloaded"``) surfaces.  ``ndjson=True`` ships the contracts
        as ``application/x-ndjson`` (one JSON object per line), the
        framing streaming producers emit.
        """
        codes = list(codes)
        if sample_ids is not None and len(sample_ids) != len(codes):
            raise ValueError(
                f"sample_ids length ({len(sample_ids)}) must "
                f"match codes length ({len(codes)})"
            )
        entries = []
        for index, code in enumerate(codes):
            entry: dict = {
                "bytecode": self._encode(code, encoding),
                "encoding": encoding,
            }
            if platform is not None:
                entry["platform"] = platform
            if sample_ids is not None:
                entry["sample_id"] = sample_ids[index]
            entries.append(entry)
        if ndjson:
            body = b"".join(
                _json.dumps(entry).encode("utf-8") + b"\n"
                for entry in entries
            )
            return self._request(
                "POST",
                "/ingest",
                body=body,
                content_type="application/x-ndjson",
            )
        return self._request("POST", "/ingest", {"contracts": entries})

    def wait_until_ready(
        self, timeout: float = 10.0, interval: float = 0.05
    ) -> dict:
        """Poll ``/v1/healthz`` until the server answers or ``timeout``
        runs out.

        Returns the first health payload; raises :class:`ServerClientError`
        with the last failure if the server never came up.  The poll loop is
        the shared :class:`~repro.resilience.retry.RetryPolicy` with a flat
        schedule (no backoff growth, no jitter) bounded by ``timeout``.
        """
        step = max(interval, 1e-3)
        policy = _RetryPolicy(
            max_attempts=max(2, min(10_000, int(timeout / step) + 2)),
            base_delay_s=interval,
            max_delay_s=step,
            multiplier=1.0,
            jitter=0.0,
            deadline_s=max(timeout, 1e-3),
        )
        try:
            return policy.call(
                lambda: self._request_once("GET", "/healthz"),
                retry_on=(ServerClientError,),
            )
        except ServerClientError as error:
            raise ServerClientError(
                error.status,
                f"scan server not ready after {timeout:.1f}s: {error}",
                code=error.code,
            ) from error
