"""Batch scanning service layer.

This package turns the one-shot :class:`~repro.core.detector.ScamDetector`
into a service that can sustain repeated, high-volume scanning workloads:

* :mod:`repro.service.cache` -- a content-addressed graph cache keyed by
  SHA-256 of the bytecode plus the config's graph fingerprint, with an
  in-memory LRU tier and an optional on-disk ``.npz`` tier.
* :mod:`repro.service.batch` -- :class:`BatchScanner`, which lowers a corpus
  or a directory of bytecode files in parallel worker threads and feeds the
  resulting graphs to the GNN in batches.

The service layer plugs into the existing stack through the pipeline's
``graph_cache`` hook, so training, evaluation and single-contract scans all
benefit from warm caches without any API change.
"""

from repro.service.cache import CacheStats, GraphCache
from repro.service.batch import BatchScanner, BatchScanResult

__all__ = [
    "GraphCache",
    "CacheStats",
    "BatchScanner",
    "BatchScanResult",
]
