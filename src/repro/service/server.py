"""Long-running scan server: versioned HTTP endpoints + request coalescing.

This module turns a trained :class:`~repro.core.detector.ScamDetector` into a
stdlib-only daemon (``http.server`` + ``threading`` + ``queue``) that serves
live scan traffic.  The API is versioned under ``/v1/``:

* ``POST /v1/scan`` -- one contract (hex or base64 bytecode) -> verdict JSON,
* ``POST /v1/scan-batch`` -- many contracts in one request,
* ``GET /v1/healthz`` -- liveness probe (model description, uptime, queue
  depth),
* ``GET /v1/metrics`` -- request counts, latency percentiles, cache hit rate
  and the inference batch-size histogram, in the same stats schema the
  offline :class:`~repro.service.batch.BatchScanResult` reports,
* ``GET /v1/verdicts`` / ``GET /v1/verdicts/<sha256>`` -- keyset-paginated
  reads over the attached persistent
  :class:`~repro.registry.store.ScanRegistry` (scan traffic is recorded into
  it, and registry hits skip inference entirely).

The unversioned paths (``/scan``, ``/healthz``, ...) remain as deprecated
aliases: they behave identically but answer with a ``Deprecation: true``
header and a ``Link: </v1/...>; rel="successor-version"`` pointer.  Errors
are a uniform JSON envelope either way::

    {"error": {"code": "overloaded", "message": "...", "retry_after": 1}}

``code`` is a stable machine-readable slug, ``retry_after`` is the backoff
hint in seconds (null unless the server sent ``Retry-After``).

The core of the serving path is the :class:`RequestCoalescer`: handler
threads lower bytecode to graphs (through the shared
:class:`~repro.service.cache.GraphCache`) and enqueue them; a single
inference thread drains the queue into one block-diagonal
:class:`~repro.gnn.data.GraphBatch` call per micro-batch (up to ``max_batch``
graphs, waiting at most ``max_wait_ms`` for stragglers).  Because
:meth:`ScamDetector.build_report` quantizes scores far above the batch
composition noise floor, coalesced verdicts are byte-identical to
single-shot :meth:`ScamDetector.scan` verdicts -- concurrency changes
latency, never answers.

Start it from the CLI (``scamdetect serve --model-path ... --port 8742``) or
programmatically::

    with ScanServer(detector, port=0) as server:       # port 0: pick free port
        client = ServerClient(port=server.port)
        verdict = client.scan(bytecode)
"""

from __future__ import annotations

import json
import queue
import threading
import time
import urllib.parse
from base64 import b64decode
from collections import deque
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.detector import ScamDetector, coerce_bytecode
from repro.core.frontends import detect_platform
from repro.gnn.data import ContractGraph
from repro.ingest.queue import IngestQueueFull
from repro.obs.prometheus import render_prometheus
from repro.obs.trace import armed as tracing_armed, trace
from repro.resilience.faults import (
    InjectedFault,
    active_injector,
    fault_point,
)
from repro.service.batch import throughput_stats
from repro.service.cache import CacheStats, GraphCache

#: Default TCP port of the scan server (spells "scan" on a phone pad, almost).
DEFAULT_PORT = 8742

#: Largest accepted request body; anything bigger is rejected with 413.
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Current API version prefix; unversioned paths are deprecated aliases.
API_PREFIX = "/v1"

#: Default (and maximum) page size of ``GET /v1/verdicts``.
VERDICTS_PAGE_SIZE = 100
VERDICTS_MAX_PAGE_SIZE = 1000

_LATENCY_WINDOW = 4096

#: Fallback machine-readable error codes per HTTP status (a handler may
#: always pass a more specific code explicitly).
_STATUS_CODES = {
    400: "bad_request",
    404: "not_found",
    411: "length_required",
    413: "payload_too_large",
    500: "internal",
    503: "unavailable",
}


class ServerShuttingDown(RuntimeError):
    """Raised by :meth:`RequestCoalescer.submit` once shutdown has begun.

    A ``RuntimeError`` subclass so callers may catch either; the HTTP layer
    maps exactly this type to 503 (anything else is a real 500).
    """


class ServerOverloaded(RuntimeError):
    """Raised by :meth:`RequestCoalescer.submit` when the inference queue is
    over its ``max_queue`` bound.

    The HTTP layer maps this to 503 with a ``Retry-After`` header --
    explicit backpressure instead of unbounded queueing under overload --
    and :class:`~repro.service.ServerClient` honors the header.
    """


def _percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (0.0 for an empty window)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(
        0,
        min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))),
    )
    return ordered[rank]


class ServerMetrics:
    """Thread-safe counters behind ``GET /v1/metrics``.

    Latencies are kept in bounded per-endpoint windows (the last
    ``_LATENCY_WINDOW`` requests) so percentiles reflect recent traffic and
    memory stays constant under sustained load.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started_monotonic = time.monotonic()
        self.requests: Dict[str, int] = {}
        self.errors = 0
        self.contracts = 0
        self.malicious = 0
        self.batch_sizes: Dict[int, int] = {}
        self.registry_hits = 0
        self.registry_misses = 0
        self.deprecated_requests = 0
        self.cascade_short_circuits = 0
        self.cascade_escalations = 0
        self.cascade_disagreements = 0
        self._latencies: Dict[str, deque] = {}

    def record_request(self, endpoint: str, deprecated: bool = False) -> None:
        with self._lock:
            self.requests[endpoint] = self.requests.get(endpoint, 0) + 1
            if deprecated:
                self.deprecated_requests += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_latency(self, endpoint: str, seconds: float) -> None:
        with self._lock:
            window = self._latencies.setdefault(
                endpoint, deque(maxlen=_LATENCY_WINDOW)
            )
            window.append(seconds)

    def record_batch(self, size: int) -> None:
        """Record one GNN inference call over ``size`` graphs."""
        with self._lock:
            self.batch_sizes[size] = self.batch_sizes.get(size, 0) + 1

    def record_verdicts(self, num_contracts: int, num_malicious: int) -> None:
        with self._lock:
            self.contracts += num_contracts
            self.malicious += num_malicious

    def record_registry(self, hit: bool) -> None:
        """Record one persistent-registry lookup on the scan path."""
        with self._lock:
            if hit:
                self.registry_hits += 1
            else:
                self.registry_misses += 1

    def record_cascade(
        self, short_circuits: int, escalations: int, disagreements: int
    ) -> None:
        """Record tier-0 pre-filter outcomes for one scored request.

        ``disagreements`` counts escalated contracts the GNN flagged as
        malicious whose pre-filter score sat below the raw at-target-recall
        threshold -- only the safety margin escalated them.  A rising count
        means the pre-filter is drifting toward benign-labelling malicious
        contracts; in healthy operation it stays at zero.
        """
        with self._lock:
            self.cascade_short_circuits += short_circuits
            self.cascade_escalations += escalations
            self.cascade_disagreements += disagreements

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started_monotonic

    def snapshot(
        self,
        cache_stats: CacheStats,
        shard_stats: Optional[Dict[str, Dict[str, object]]] = None,
        cascade_enabled: bool = False,
        registry_busy_retries: Optional[int] = None,
        ingest: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """The ``GET /v1/metrics`` payload.

        The ``scans`` section uses the exact schema of
        :meth:`~repro.service.batch.BatchScanResult.stats_dict`, so offline
        batch runs and the live server feed the same dashboards.  When the
        server runs sharded, ``shard_stats`` adds a ``shards`` section with
        per-shard inference latency, cache counters and restarts (see
        :meth:`~repro.service.sharded.ShardedScanner.shard_stats_dict`).
        """
        with self._lock:
            requests = dict(self.requests)
            errors = self.errors
            contracts = self.contracts
            malicious = self.malicious
            batch_sizes = dict(self.batch_sizes)
            registry_hits = self.registry_hits
            registry_misses = self.registry_misses
            deprecated = self.deprecated_requests
            cascade = {
                "short_circuits": self.cascade_short_circuits,
                "escalations": self.cascade_escalations,
                "disagreements": self.cascade_disagreements,
            }
            latencies = {
                endpoint: list(window)
                for endpoint, window in self._latencies.items()
            }
        latency_ms = {}
        for endpoint, window in sorted(latencies.items()):
            latency_ms[endpoint] = {
                "count": len(window),
                "p50_ms": _percentile(window, 0.50) * 1e3,
                "p90_ms": _percentile(window, 0.90) * 1e3,
                "p99_ms": _percentile(window, 0.99) * 1e3,
            }
        scans = throughput_stats(
            contracts, malicious, self.uptime_seconds, cache_stats, batch_sizes
        )
        # mirror BatchScanResult.stats_dict's registry section so offline
        # and online paths keep one dashboard schema
        scans["registry"] = {"hits": registry_hits, "misses": registry_misses}
        if registry_busy_retries is not None:
            # WAL write contention over this server's registry handle(s):
            # a climbing counter on a healthy fleet means the partitioning
            # layout (or the write batch sizes) needs another look
            scans["registry"]["busy_retries"] = registry_busy_retries
        if cascade_enabled:
            # same key as BatchScanResult.stats_dict's cascade section
            scans["cascade"] = cascade
        payload = {
            "uptime_seconds": self.uptime_seconds,
            "requests": {
                "total": sum(requests.values()),
                "deprecated": deprecated,
                **requests,
            },
            "errors": errors,
            "latency": latency_ms,
            "scans": scans,
        }
        if shard_stats is not None:
            payload["shards"] = shard_stats
        if ingest is not None:
            # queue depth / enqueue-dedupe / drop counters of the ingest
            # tier (see EventIngestService.snapshot)
            payload["ingest"] = ingest
        return payload


class _PendingInference:
    """One submitter's graphs waiting for the coalescer to score them."""

    __slots__ = ("graphs", "probabilities", "error", "ready")

    def __init__(self, graphs: List[ContractGraph]) -> None:
        self.graphs = graphs
        self.probabilities: Optional[List[float]] = None
        self.error: Optional[BaseException] = None
        self.ready = threading.Event()


class RequestCoalescer:
    """Micro-batches concurrent inference requests into single model calls.

    Handler threads call :meth:`submit` with already-lowered graphs and
    block; a single drain thread collects up to ``max_batch`` graphs --
    waiting at most ``max_wait_ms`` after the first arrival for stragglers --
    and scores them with one batched ``predict_proba`` call.  One inference
    thread means the model itself is never called concurrently, so no model
    state needs locking.

    Shutdown is graceful: :meth:`close` rejects new submissions but drains
    everything already queued before the thread exits, so no accepted request
    is ever dropped.

    Args:
        trainer: The fitted :class:`~repro.gnn.training.GNNTrainer` used for
            scoring (one batched model call per micro-batch).
        metrics: Sink for the batch-size histogram.
        max_batch: Graph budget per inference call.  A single oversized
            submission (a big ``/v1/scan-batch`` request) is still honoured;
            it is chunked internally at this size.
        max_wait_ms: How long to hold the first request of a batch while
            waiting for companions.  0 disables coalescing (every request is
            scored alone, still through the single inference thread).
        scorer: Optional replacement for ``trainer.predict_proba`` with the
            same ``(graphs, batch_size)`` signature.  The sharded server
            passes :meth:`~repro.service.sharded.ShardedScanner.infer` here,
            so coalesced micro-batches fan out round-robin across the worker
            processes instead of scoring on the parent's model.
        max_queue: Bound on queued (not yet scored) submissions; a submit
            over the bound raises :class:`ServerOverloaded` (-> 503 +
            ``Retry-After``) instead of growing the queue without limit.
            None (the default) keeps the historical unbounded behavior.
    """

    def __init__(
        self,
        trainer,
        metrics: ServerMetrics,
        max_batch: int = 32,
        max_wait_ms: float = 5.0,
        scorer=None,
        max_queue: Optional[int] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1 (or None)")
        if trainer is None and scorer is None:
            raise ValueError("RequestCoalescer needs a trainer or a scorer")
        self._score_graphs = (
            scorer if scorer is not None else trainer.predict_proba
        )
        self._metrics = metrics
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.max_queue = max_queue
        self._queue: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._closed = False
        self._stopping = threading.Event()
        #: queued by close() AFTER the closed flag flips, under the same
        #: lock submit() enqueues under -- FIFO ordering then guarantees the
        #: sentinel sits behind every accepted submission, so the drain
        #: thread cannot exit with work still queued
        self._shutdown_sentinel = object()
        self._thread = threading.Thread(
            target=self._drain_loop,
            name="scamdetect-coalescer",
            daemon=True,
        )

    def start(self) -> None:
        self._thread.start()

    def submit(self, graphs: Sequence[ContractGraph]) -> List[float]:
        """Score ``graphs``; blocks until the drain thread has answered.

        Returns the malicious-class probability per graph, in input order.

        Raises:
            ServerShuttingDown: If the coalescer is shutting down.
            ServerOverloaded: If ``max_queue`` submissions are already
                waiting (bounded-queue backpressure).
        """
        if not graphs:
            return []
        pending = _PendingInference(list(graphs))
        with self._lock:
            if self._closed:
                raise ServerShuttingDown("scan server is shutting down")
            if (
                self.max_queue is not None
                and self._queue.qsize() >= self.max_queue
            ):
                raise ServerOverloaded(
                    f"inference queue is full ({self.max_queue} waiting); "
                    f"retry later"
                )
            self._queue.put(pending)
        # obs site coalescer.wait: time this submitter spent blocked on the
        # drain thread (queueing + batch hold window + model call)
        with trace("coalescer.wait", graphs=len(graphs)):
            pending.ready.wait()
        if pending.error is not None:
            raise pending.error
        assert pending.probabilities is not None
        return pending.probabilities

    def close(self) -> None:
        """Stop accepting work, drain the queue, then stop the thread."""
        self._stopping.set()  # skip hold windows from here on
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(self._shutdown_sentinel)
        if self._thread.is_alive():
            self._thread.join()

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    # ------------------------------------------------------------------ #

    def _drain_loop(self) -> None:
        done = False
        while not done:
            first = self._queue.get()
            if first is self._shutdown_sentinel:
                return
            batch = [first]
            total = len(first.graphs)
            if not self._stopping.is_set() and self.max_wait_ms > 0:
                deadline = time.monotonic() + self.max_wait_ms / 1e3
                while total < self.max_batch:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    try:
                        extra = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                    if extra is self._shutdown_sentinel:
                        done = True
                        break
                    batch.append(extra)
                    total += len(extra.graphs)
            else:
                # shutting down (or coalescing disabled): take whatever is
                # already queued without holding the batch open
                while total < self.max_batch:
                    try:
                        extra = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if extra is self._shutdown_sentinel:
                        done = True
                        break
                    batch.append(extra)
                    total += len(extra.graphs)
            self._score(batch, total)

    def _score(self, batch: List[_PendingInference], total: int) -> None:
        graphs = [graph for pending in batch for graph in pending.graphs]
        try:
            # obs root: the drain thread serves many requests per model
            # call, so the inference span is its own (infra) trace rather
            # than a child of any single request
            with trace(
                "gnn.infer", root=True, graphs=total, requests=len(batch)
            ):
                probabilities = self._score_graphs(
                    graphs, batch_size=self.max_batch
                )
        except BaseException as error:  # propagate to every blocked submitter
            for pending in batch:
                pending.error = error
                pending.ready.set()
            return
        # record the chunk sizes the model actually saw (predict_proba
        # splits anything beyond max_batch internally)
        full, remainder = divmod(total, self.max_batch)
        for _ in range(full):
            self._metrics.record_batch(self.max_batch)
        if remainder:
            self._metrics.record_batch(remainder)
        offset = 0
        for pending in batch:
            rows = probabilities[offset : offset + len(pending.graphs)]
            pending.probabilities = [float(row[1]) for row in rows]
            offset += len(pending.graphs)
            pending.ready.set()


# ---------------------------------------------------------------------- #
# HTTP plumbing


class _RequestError(Exception):
    """A client error carrying its HTTP status and machine-readable code."""

    def __init__(
        self, status: int, message: str, code: Optional[str] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = (
            code
            if code is not None
            else _STATUS_CODES.get(status, "error")
        )


def _error_envelope(
    code: str, message: str, retry_after: Optional[int] = None
) -> Dict[str, object]:
    """The uniform error body: ``{"error": {code, message, retry_after}}``.

    ``retry_after`` mirrors the ``Retry-After`` header (seconds) so clients
    that only look at the body still back off correctly; it is null for
    non-retryable errors.
    """
    return {
        "error": {
            "code": code,
            "message": message,
            "retry_after": retry_after,
        }
    }


def _parse_contract(
    entry: object,
    index: Optional[int] = None,
    default_platform: Optional[str] = None,
) -> Tuple[bytes, Optional[str], str]:
    """Decode one contract object from a request payload.

    Accepted shape: ``{"bytecode": "...", "encoding": "hex"|"base64",
    "platform": "evm"|"wasm", "sample_id": "..."}`` -- only ``bytecode`` is
    required.  Returns ``(raw bytes, platform or None, sample id)``.
    """
    where = f"contracts[{index}]" if index is not None else "request body"
    if not isinstance(entry, dict):
        raise _RequestError(400, f"{where} must be a JSON object")
    bytecode = entry.get("bytecode")
    if not isinstance(bytecode, str) or not bytecode:
        raise _RequestError(
            400,
            f"{where}: 'bytecode' must be a non-empty hex or base64 string",
        )
    encoding = entry.get("encoding", "hex")
    if encoding not in ("hex", "base64"):
        raise _RequestError(
            400,
            f"{where}: unsupported encoding {encoding!r} "
            f"(use 'hex' or 'base64')",
        )
    try:
        if encoding == "base64":
            raw = b64decode(bytecode, validate=True)
        else:
            raw = coerce_bytecode(bytecode)
    except (ValueError, TypeError) as error:
        raise _RequestError(
            400,
            f"{where}: bytecode does not decode as {encoding} ({error})",
        ) from error
    if not raw:
        raise _RequestError(400, f"{where}: bytecode decodes to zero bytes")
    platform = entry.get("platform", default_platform)
    if platform is not None and platform not in ("evm", "wasm"):
        raise _RequestError(400, f"{where}: unknown platform {platform!r}")
    sample_id = entry.get("sample_id")
    if sample_id is None:
        sample_id = "contract" if index is None else f"contract-{index:04d}"
    elif not isinstance(sample_id, str):
        raise _RequestError(400, f"{where}: 'sample_id' must be a string")
    return raw, platform, sample_id


class _ScanHTTPRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning :class:`ScanServer`."""

    server_version = "scamdetect"
    # HTTP/1.0: one request per connection, so pool workers are never pinned
    # by an idle keep-alive peer
    protocol_version = "HTTP/1.0"
    # per-connection socket timeout: a peer that stalls mid-request (slow
    # headers, missing body bytes) frees its pool worker instead of pinning
    # it forever -- and shutdown's worker join can always complete
    timeout = 30.0

    @property
    def scan_server(self) -> "ScanServer":
        return self.server.scan_server  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # access logging would swamp the smoke tests; metrics cover it

    def _route(self, path: str) -> Tuple[str, bool]:
        """Strip the version prefix; returns ``(bare path, deprecated)``.

        ``/v1/scan`` -> ``("/scan", False)``; the unversioned alias
        ``/scan`` -> ``("/scan", True)`` and every response to it carries
        the deprecation headers.
        """
        if path == API_PREFIX or path.startswith(API_PREFIX + "/"):
            return path[len(API_PREFIX):] or "/", False
        return path, True

    def _deprecation_headers(self, bare_path: str) -> Dict[str, str]:
        return {
            "Deprecation": "true",
            "Link": (
                f"<{API_PREFIX}{bare_path}>; rel=\"successor-version\""
            ),
        }

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(
        self,
        status: int,
        body: str,
        content_type: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_error_json(
        self,
        status: int,
        message: str,
        code: Optional[str] = None,
        retry_after: Optional[int] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        headers = dict(extra_headers or {})
        if retry_after is not None:
            headers["Retry-After"] = str(retry_after)
        self._send_json(
            status,
            _error_envelope(
                code or _STATUS_CODES.get(status, "error"),
                message,
                retry_after,
            ),
            headers=headers,
        )

    def _retry_after_seconds(self) -> int:
        return max(1, int(round(self.scan_server.retry_after_s)))

    def _read_json(self) -> object:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise _RequestError(411, "Content-Length header is required")
        try:
            length = int(length_header)
        except ValueError:
            raise _RequestError(400, "invalid Content-Length") from None
        if length < 0:
            # a negative length would turn rfile.read() into read-to-EOF,
            # pinning a pool worker until the peer hangs up
            raise _RequestError(400, "invalid Content-Length")
        if length > MAX_BODY_BYTES:
            raise _RequestError(
                413, f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        body = self.rfile.read(length)
        try:
            return json.loads(body)
        except ValueError as error:
            raise _RequestError(
                400, f"request body is not valid JSON ({error})"
            ) from error

    def _read_body_bytes(self) -> bytes:
        """Raw request body; honors ``Transfer-Encoding: chunked`` so
        streaming producers can POST without knowing the length upfront."""
        encoding = (self.headers.get("Transfer-Encoding") or "").lower()
        if "chunked" in encoding:
            return self._read_chunked_body()
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise _RequestError(
                411,
                "Content-Length header is required "
                "(or use Transfer-Encoding: chunked)",
            )
        try:
            length = int(length_header)
        except ValueError:
            raise _RequestError(400, "invalid Content-Length") from None
        if length < 0:
            raise _RequestError(400, "invalid Content-Length")
        if length > MAX_BODY_BYTES:
            raise _RequestError(
                413, f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        return self.rfile.read(length)

    def _read_chunked_body(self) -> bytes:
        blocks = []
        total = 0
        while True:
            size_line = self.rfile.readline(80)
            if not size_line:
                raise _RequestError(400, "truncated chunked body")
            try:
                size = int(size_line.split(b";", 1)[0].strip() or b"x", 16)
            except ValueError:
                raise _RequestError(400, "invalid chunk size") from None
            if size == 0:
                # consume optional trailers up to the terminating blank line
                while True:
                    line = self.rfile.readline(1024)
                    if line in (b"\r\n", b"\n", b""):
                        break
                return b"".join(blocks)
            total += size
            if total > MAX_BODY_BYTES:
                raise _RequestError(
                    413, f"request body exceeds {MAX_BODY_BYTES} bytes"
                )
            chunk = self.rfile.read(size)
            if len(chunk) != size:
                raise _RequestError(400, "truncated chunk")
            blocks.append(chunk)
            self.rfile.read(2)  # the CRLF closing each chunk

    # -------------------------------------------------------------- #

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler name
        server = self.scan_server
        parsed = urllib.parse.urlsplit(self.path)
        path, deprecated = self._route(parsed.path)
        headers = self._deprecation_headers(path) if deprecated else None
        if path == "/healthz":
            server.metrics.record_request("healthz", deprecated)
            self._send_json(200, server.health(), headers=headers)
        elif path == "/metrics":
            server.metrics.record_request("metrics", deprecated)
            query = urllib.parse.parse_qs(parsed.query)
            formats = query.get("format", ["json"])
            snapshot = server.metrics.snapshot(
                server.cache_stats,
                server.shard_stats(),
                cascade_enabled=server.detector.cascade,
                registry_busy_retries=server.registry_busy_retries(),
                ingest=(
                    server.ingest.snapshot()
                    if server.ingest is not None
                    else None
                ),
            )
            if formats[-1] == "prometheus":
                self._send_text(
                    200,
                    render_prometheus(
                        snapshot,
                        tracing_armed=tracing_armed(),
                        fault_injection_armed=active_injector() is not None,
                    ),
                    "text/plain; version=0.0.4; charset=utf-8",
                    headers=headers,
                )
            elif formats[-1] == "json":
                self._send_json(200, snapshot, headers=headers)
            else:
                server.metrics.record_error()
                self._send_error_json(
                    400,
                    f"unknown metrics format {formats[-1]!r} "
                    f"(use 'json' or 'prometheus')",
                    code="bad_request",
                    extra_headers=headers,
                )
        elif path == "/verdicts" or path.startswith("/verdicts/"):
            server.metrics.record_request("verdicts", deprecated)
            try:
                if path == "/verdicts":
                    payload = server.verdicts_index(
                        urllib.parse.parse_qs(parsed.query)
                    )
                else:
                    payload = server.verdicts_detail(
                        path[len("/verdicts/"):]
                    )
                self._send_json(200, payload, headers=headers)
            except _RequestError as error:
                server.metrics.record_error()
                self._send_error_json(
                    error.status,
                    str(error),
                    code=error.code,
                    extra_headers=headers,
                )
        else:
            server.metrics.record_error()
            self._send_error_json(
                404, f"unknown path {self.path!r}", code="not_found"
            )

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler name
        server = self.scan_server
        path, deprecated = self._route(self.path)
        headers = self._deprecation_headers(path) if deprecated else None
        routes = {
            "/scan": ("scan", self._handle_scan),
            "/scan-batch": ("scan_batch", self._handle_scan_batch),
            "/ingest": ("ingest", self._handle_ingest),
        }
        if path not in routes:
            server.metrics.record_error()
            self._send_error_json(
                404, f"unknown path {self.path!r}", code="not_found"
            )
            return
        endpoint, handler = routes[path]
        server.metrics.record_request(endpoint, deprecated)
        started = time.perf_counter()
        try:
            # obs root: one served request = one trace; every span the
            # handler touches (lowering, cache, coalescer wait, registry
            # writes) nests under it via the thread-local context
            with trace("server.request", root=True, endpoint=endpoint):
                # chaos site: delay = slow handler; exception-kind faults
                # land in the InjectedFault arm below as a retryable 503
                fault_point("server.handler")
                status, payload = handler()
        except _RequestError as error:
            server.metrics.record_error()
            self._send_error_json(
                error.status,
                str(error),
                code=error.code,
                extra_headers=headers,
            )
            return
        except ServerShuttingDown as error:
            server.metrics.record_error()
            self._send_error_json(
                503, str(error), code="shutting_down", extra_headers=headers
            )
            return
        except ServerOverloaded as error:
            server.metrics.record_error()
            self._send_error_json(
                503,
                str(error),
                code="overloaded",
                retry_after=self._retry_after_seconds(),
                extra_headers=headers,
            )
            return
        except InjectedFault as error:
            # an injected transient server fault is answered like overload:
            # 503 + Retry-After, so well-behaved clients retry
            server.metrics.record_error()
            self._send_error_json(
                503,
                f"transient fault: {error}",
                code="transient_fault",
                retry_after=self._retry_after_seconds(),
                extra_headers=headers,
            )
            return
        except ValueError as error:
            # bytecode that decoded but failed to parse/lower is a client
            # problem, not a server fault
            server.metrics.record_error()
            self._send_error_json(
                400,
                f"bytecode rejected: {error}",
                code="bad_request",
                extra_headers=headers,
            )
            return
        except Exception as error:  # noqa: BLE001 - last-resort 500
            server.metrics.record_error()
            self._send_error_json(
                500,
                f"internal error: {error}",
                code="internal",
                extra_headers=headers,
            )
            return
        server.metrics.record_latency(endpoint, time.perf_counter() - started)
        self._send_json(status, payload, headers=headers)

    # -------------------------------------------------------------- #

    def _handle_scan(self) -> Tuple[int, Dict[str, object]]:
        server = self.scan_server
        raw, platform, sample_id = _parse_contract(self._read_json())
        report = server.scan_one(raw, platform, sample_id)
        return 200, report.to_dict()

    def _handle_ingest(self) -> Tuple[int, Dict[str, object]]:
        """``POST /v1/ingest``: push bytecode into the ingest queue.

        Accepts one contract object, a ``{"contracts": [...]}`` batch, or
        NDJSON (one contract object per line; ``Content-Type:
        application/x-ndjson``), optionally chunk-encoded.  Answers 202
        with accepted/deduped counts -- verdicts land asynchronously in
        the registry.  A full queue turns into 503 + ``Retry-After``
        (nothing accepted) or a partial 202 with a ``rejected`` count.
        """
        server = self.scan_server
        ingest = server.ingest
        if ingest is None:
            raise _RequestError(
                404,
                "ingest is not enabled; start the server with "
                "--ingest-queue N (and a registry)",
                code="ingest_disabled",
            )
        body = self._read_body_bytes()
        content_type = (self.headers.get("Content-Type") or "").lower()
        if "ndjson" in content_type:
            entries: List[object] = []
            for number, line in enumerate(body.splitlines(), start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except ValueError as error:
                    raise _RequestError(
                        400,
                        f"ingest line {number} is not valid JSON ({error})",
                    ) from error
        else:
            try:
                payload = json.loads(body)
            except ValueError as error:
                raise _RequestError(
                    400, f"request body is not valid JSON ({error})"
                ) from error
            if isinstance(payload, dict) and isinstance(
                payload.get("contracts"), list
            ):
                entries = payload["contracts"]
            else:
                entries = [payload]
        if not entries:
            raise _RequestError(400, "ingest request carries no contracts")
        contracts = [
            _parse_contract(entry, index=index)
            for index, entry in enumerate(entries)
        ]
        accepted = deduped = rejected = 0
        retry_after: Optional[int] = None
        for raw, platform, sample_id in contracts:
            try:
                outcome = ingest.submit_bytes(
                    raw, sample_id=sample_id, platform=platform,
                    source="http",
                )
            except IngestQueueFull as error:
                if accepted + deduped == 0:
                    # nothing landed: plain backpressure, retry the lot
                    raise ServerOverloaded(str(error)) from error
                rejected = len(contracts) - accepted - deduped
                retry_after = self._retry_after_seconds()
                break
            if outcome == "deduped":
                deduped += 1
            else:
                accepted += 1
        response: Dict[str, object] = {
            "accepted": accepted,
            "deduped": deduped,
            "rejected": rejected,
            "queue_depth": ingest.queue.depth(),
        }
        if retry_after is not None:
            response["retry_after"] = retry_after
        return 202, response

    def _handle_scan_batch(self) -> Tuple[int, Dict[str, object]]:
        server = self.scan_server
        payload = self._read_json()
        if not isinstance(payload, dict) or not isinstance(
            payload.get("contracts"), list
        ):
            raise _RequestError(
                400,
                "request body must be a JSON object with a 'contracts' array",
            )
        default_platform = payload.get("platform")
        if default_platform is not None and default_platform not in (
            "evm",
            "wasm",
        ):
            raise _RequestError(400, f"unknown platform {default_platform!r}")
        contracts = [
            _parse_contract(
                entry, index=index, default_platform=default_platform
            )
            for index, entry in enumerate(payload["contracts"])
        ]
        started = time.perf_counter()
        reports = server.scan_group(contracts)
        elapsed = time.perf_counter() - started
        malicious = sum(1 for report in reports if report.is_malicious)
        return 200, {
            "reports": [report.to_dict() for report in reports],
            "contracts": len(reports),
            "malicious": malicious,
            "benign": len(reports) - malicious,
            "elapsed_seconds": elapsed,
        }


class _ThreadPoolHTTPServer(HTTPServer):
    """An :class:`HTTPServer` handling connections on a fixed worker pool.

    The stdlib ``ThreadingHTTPServer`` spawns an unbounded thread per
    connection; a fixed pool keeps the ``--workers`` knob honest and bounds
    lowering concurrency.  Accepted connections queue up; on shutdown the
    sentinel values are enqueued *behind* any pending connections, so every
    accepted request is answered before the workers exit.
    """

    daemon_threads = True
    allow_reuse_address = True
    # the stdlib default listen backlog of 5 resets connections under the
    # very bursts the coalescer exists for (64 concurrent clients is the
    # acceptance scenario); size it like a daemon, not a toy
    request_queue_size = 128

    def __init__(
        self, address, handler, scan_server: "ScanServer", workers: int
    ) -> None:
        super().__init__(address, handler)
        self.scan_server = scan_server
        self._tasks: queue.Queue = queue.Queue()
        self._workers = [
            threading.Thread(
                target=self._work,
                name=f"scamdetect-http-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]

    def start_workers(self) -> None:
        for worker in self._workers:
            worker.start()

    def stop_workers(self) -> None:
        for _ in self._workers:
            self._tasks.put(None)
        for worker in self._workers:
            if worker.is_alive():
                worker.join()

    def process_request(self, request, client_address) -> None:
        self._tasks.put((request, client_address))

    def _work(self) -> None:
        while True:
            task = self._tasks.get()
            if task is None:
                return
            request, client_address = task
            try:
                self.finish_request(request, client_address)
            except Exception:  # noqa: BLE001 - a broken peer must not kill
                pass  # the worker; the error surfaced to the peer already
            finally:
                self.shutdown_request(request)


class ScanServer:
    """The long-running scan daemon.

    Binds immediately (so a bad port fails at construction, not at
    ``start()``), serves on a fixed pool of handler threads, and scores all
    traffic through one :class:`RequestCoalescer`, one shared
    :class:`~repro.service.cache.GraphCache` and one pipeline.

    Args:
        detector: A trained detector; its threshold/explain settings apply
            to every verdict (leave both at the defaults for verdicts
            byte-identical to a default ``ScamDetector.scan``).
        host: Bind address.
        port: TCP port; 0 picks a free port (see :attr:`port`).
        workers: Handler threads -- the lowering (CFG recovery) concurrency.
        max_batch: Coalescer graph budget per inference call.
        max_wait_ms: Coalescer hold time for batch formation.
        max_queue: Bound on queued inference submissions; requests over the
            bound get 503 + ``Retry-After`` (backpressure) instead of
            queueing without limit.  None = unbounded (the default).
        retry_after_s: The ``Retry-After`` value sent with overload and
            injected-transient-fault 503s.
        cache: Optional :class:`GraphCache`; one scoped to the detector's
            config is created when omitted, so repeated bytecode is lowered
            once across all clients.
        shards: Inference worker *processes*.  With the default (1) the
            coalescer scores on the in-process model; ``shards >= 2``
            spawns a :class:`~repro.service.sharded.ShardedScanner` pool
            and the coalescer dispatches its micro-batches round-robin to
            the shard replicas, with per-shard latency/cache/restart
            counters surfaced under ``GET /v1/metrics``.
        registry: Optional persistent
            :class:`~repro.registry.store.ScanRegistry` (or a
            :class:`~repro.registry.partition.PartitionedScanRegistry` --
            the server only uses the shared surface).  When attached, every
            served verdict is recorded durably, contracts the registry
            already knows are answered without lowering or inference, and
            ``GET /v1/verdicts`` (+ ``/v1/verdicts/<sha256>``) serve
            keyset-paginated reads over the store.  Must be scoped to the
            detector config's graph fingerprint.

    Raises:
        OSError: If the address cannot be bound.
        RuntimeError: If the detector is not trained.
    """

    def __init__(
        self,
        detector: ScamDetector,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        workers: int = 8,
        max_batch: int = 32,
        max_wait_ms: float = 5.0,
        cache: Optional[GraphCache] = None,
        shards: int = 1,
        registry=None,
        max_queue: Optional[int] = None,
        retry_after_s: float = 1.0,
        ingest_queue: Optional[int] = None,
    ) -> None:
        if not detector.is_trained:
            raise RuntimeError("ScanServer requires a trained detector")
        # a cascade-enabled detector without a trained head must fail at
        # construction, not on the first served request
        detector.cascade_head()
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if registry is not None:
            fingerprint = detector.config.graph_fingerprint()
            if registry.fingerprint and registry.fingerprint != fingerprint:
                raise ValueError(
                    f"registry fingerprint {registry.fingerprint!r} does "
                    f"not match this detector config's {fingerprint!r}"
                )
            registry.fingerprint = fingerprint
        self.registry = registry
        self.detector = detector
        if cache is None:
            cache = GraphCache.for_config(detector.config)
        # remember what the pipeline had so shutdown() leaves the caller's
        # detector exactly as it was found
        self._previous_cache = detector.pipeline.graph_cache
        detector.pipeline.set_graph_cache(cache)
        self.cache = cache
        self.workers = workers
        self.shards = shards
        self.sharded = None
        scorer = None
        if shards > 1:
            from repro.service.sharded import ShardedScanner

            self.sharded = ShardedScanner(
                detector, shards=shards, inference_batch_size=max_batch
            )
            scorer = self.sharded.infer
        self.retry_after_s = retry_after_s
        self.metrics = ServerMetrics()
        self.coalescer = RequestCoalescer(
            detector.pipeline._trainer,
            self.metrics,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            scorer=scorer,
            max_queue=max_queue,
        )
        self.ingest = None
        if ingest_queue is not None:
            if ingest_queue < 1:
                raise ValueError("ingest_queue must be >= 1")
            if registry is None:
                raise ValueError(
                    "ingest_queue requires an attached registry: "
                    "POST /v1/ingest records its verdicts durably"
                )
            # deferred import: repro.ingest.service imports the batch
            # module from this package
            from repro.ingest.service import EventIngestService

            self.ingest = EventIngestService(
                detector,
                registry,
                roots=(),
                queue_capacity=ingest_queue,
                batch_size=max_batch,
                cache=cache,
                retry_after_s=retry_after_s,
            )
        self._httpd = _ThreadPoolHTTPServer(
            (host, port), _ScanHTTPRequestHandler, self, workers
        )
        self._accept_thread: Optional[threading.Thread] = None
        self._stop_requested = threading.Event()
        self._started = False
        self._stopped = False

    # -------------------------------------------------------------- #

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def cache_stats(self) -> CacheStats:
        return self.cache.stats if self.cache is not None else CacheStats()

    def registry_busy_retries(self) -> Optional[int]:
        """WAL busy-retry count of the attached registry (None without
        one) -- fleet write-contention telemetry for ``/v1/metrics``."""
        if self.registry is None:
            return None
        return int(self.registry.busy_retries)

    def health(self) -> Dict[str, object]:
        from repro import __version__

        degraded = self.sharded is not None and self.sharded.degraded
        uptime = self.metrics.uptime_seconds
        payload = {
            "status": "degraded" if degraded else "ok",
            "api_version": API_PREFIX.lstrip("/"),
            "version": __version__,
            "model": self.detector.pipeline.describe(),
            "uptime_seconds": uptime,
            # fleet probes compare uptime_s (a cold restart resets it) and
            # the armed flags (a long-lived node left armed is degraded
            # tooling, not degraded serving) against expectations
            "uptime_s": uptime,
            "tracing": "armed" if tracing_armed() else "disarmed",
            "fault_injection": (
                "armed" if active_injector() is not None else "disarmed"
            ),
            "workers": self.workers,
            "shards": self.shards,
            "max_batch": self.coalescer.max_batch,
            "max_wait_ms": self.coalescer.max_wait_ms,
            "queue_depth": self.coalescer.queue_depth,
        }
        if degraded:
            payload["quarantined_shards"] = self.sharded.quarantined_shards
        if self.detector.cascade:
            payload["cascade"] = {
                "margin": self.detector.effective_cascade_margin()
            }
        if self.registry is not None:
            payload["registry"] = self.registry.counts()
        if self.ingest is not None:
            queue = self.ingest.queue.snapshot()
            payload["ingest"] = {
                "backend": self.ingest.backend,
                "queue_depth": queue["depth"],
                "capacity": queue["capacity"],
                "enqueue_deduped": queue["deduped"],
                "dropped": queue["dropped"],
            }
        return payload

    def shard_stats(self) -> Optional[Dict[str, Dict[str, object]]]:
        """Per-shard telemetry for ``/v1/metrics`` (None when unsharded)."""
        if self.sharded is None:
            return None
        return self.sharded.shard_stats_dict()

    # -------------------------------------------------------------- #
    # scoring entry points used by the HTTP handlers (and tests)

    def scan_one(self, raw: bytes, platform: Optional[str], sample_id: str):
        """Report one contract: registry lookup, tier-0 pre-filter (when
        the cascade is enabled), else coalesce-score."""
        cached = self._registry_lookup(raw, sample_id)
        if cached is not None:
            self.metrics.record_verdicts(1, int(cached.is_malicious))
            return cached
        resolved = platform or detect_platform(raw)
        with trace("cascade.tier0", contracts=1):
            decisions = self.detector.cascade_decide([raw], [resolved])
        if decisions is not None and decisions[0].short_circuit:
            report = self.detector.build_prefilter_report(
                raw, sample_id, resolved, decisions[0].probability
            )
            self._registry_record([(raw, report)])
            self.metrics.record_verdicts(1, int(report.is_malicious))
            self.metrics.record_cascade(1, 0, 0)
            return report
        with trace("lowering", sample=sample_id):
            graph, resolved = self.detector.pipeline.analyse_bytecode(
                raw, platform=resolved, sample_id=sample_id
            )
        probability = self.coalescer.submit([graph])[0]
        report = self.detector.build_report(
            raw, sample_id, resolved, probability, graph
        )
        self._registry_record([(raw, report)])
        self.metrics.record_verdicts(1, int(report.is_malicious))
        if decisions is not None:
            self.metrics.record_cascade(
                0, 1, int(report.label == 1 and decisions[0].near_miss)
            )
        return report

    def scan_group(
        self, contracts: Sequence[Tuple[bytes, Optional[str], str]]
    ):
        """Score one ``/v1/scan-batch`` request as a single group.

        Contracts the registry already knows are answered directly; with
        the cascade enabled, confident-benign remainders short-circuit as
        ``stage: "prefilter"`` verdicts, and only the escalated rest is
        lowered and submitted to the coalescer.
        """
        cached_reports = self._registry_lookup_many(
            [raw for raw, _, _ in contracts],
            [sample_id for _, _, sample_id in contracts],
        )
        reports: List = list(cached_reports)
        misses = [
            index for index, report in enumerate(reports) if report is None
        ]
        resolved_platforms = {
            index: (
                contracts[index][1] or detect_platform(contracts[index][0])
            )
            for index in misses
        }
        with trace("cascade.tier0", contracts=len(misses)):
            decisions = self.detector.cascade_decide(
                [contracts[index][0] for index in misses],
                [resolved_platforms[index] for index in misses],
            )
        recorded = []
        escalated = []
        short_circuits = 0
        for position, index in enumerate(misses):
            raw, _, sample_id = contracts[index]
            if decisions is not None and decisions[position].short_circuit:
                report = self.detector.build_prefilter_report(
                    raw,
                    sample_id,
                    resolved_platforms[index],
                    decisions[position].probability,
                )
                reports[index] = report
                recorded.append((raw, report))
                short_circuits += 1
            else:
                escalated.append(position)
        lowered = []
        with trace("lowering", contracts=len(escalated)):
            for position in escalated:
                index = misses[position]
                raw, _, sample_id = contracts[index]
                graph, resolved = self.detector.pipeline.analyse_bytecode(
                    raw,
                    platform=resolved_platforms[index],
                    sample_id=sample_id,
                )
                lowered.append(
                    (index, raw, sample_id, resolved, graph, position)
                )
        probabilities = self.coalescer.submit(
            [graph for _, _, _, _, graph, _ in lowered]
        )
        disagreements = 0
        for (
            index,
            raw,
            sample_id,
            resolved,
            graph,
            position,
        ), probability in zip(lowered, probabilities):
            report = self.detector.build_report(
                raw, sample_id, resolved, probability, graph
            )
            if (
                decisions is not None
                and report.label == 1
                and decisions[position].near_miss
            ):
                disagreements += 1
            reports[index] = report
            recorded.append((raw, report))
        self._registry_record(recorded)
        self.metrics.record_verdicts(
            len(reports),
            sum(1 for report in reports if report.is_malicious),
        )
        if decisions is not None:
            self.metrics.record_cascade(
                short_circuits, len(escalated), disagreements
            )
        return reports

    # -------------------------------------------------------------- #
    # registry integration

    def _registry_lookup(self, raw: bytes, sample_id: str):
        """The stored verdict for ``raw``, or None (no registry / unknown /
        recorded under different weights or another explain setting)."""
        return self._registry_lookup_many([raw], [sample_id])[0]

    def _registry_lookup_many(
        self, raws: Sequence[bytes], sample_ids: Sequence[str]
    ) -> List:
        """Stored verdicts for ``raws`` in one bulk registry query (None
        per miss) -- one locked SELECT per request, not per contract."""
        if self.registry is None:
            return [None] * len(raws)
        from repro.registry.store import content_sha256

        shas = [content_sha256(raw) for raw in raws]
        # weight-level identity (plus the cascade mode/margin suffix): a
        # retrained model -- or the same bundle scanned with the cascade
        # toggled or re-margined -- must never be served old verdicts
        identity = self.detector.model_identity()
        rows = self.registry.get_many(shas)
        reports: List = []
        for sha, sample_id in zip(shas, sample_ids):
            row = rows.get(sha)
            if (
                row is None
                or row.model_identity != identity
                or row.explained != self.detector.explain
            ):
                self.metrics.record_registry(hit=False)
                reports.append(None)
                continue
            self.metrics.record_registry(hit=True)
            report = row.to_report(sample_id=sample_id)
            report.label = int(
                report.malicious_probability >= self.detector.threshold
            )
            reports.append(report)
        return reports

    def _registry_record(self, entries) -> None:
        if self.registry is None or not entries:
            return
        from repro.registry.store import content_sha256

        self.registry.record_many(
            [
                (content_sha256(raw), report, report.sample_id)
                for raw, report in entries
            ],
            explained=self.detector.explain,
            model_identity=self.detector.model_identity(),
        )

    def verdicts_index(
        self, params: Dict[str, List[str]]
    ) -> Dict[str, object]:
        """``GET /v1/verdicts`` -- keyset-paginated registry rows.

        Ordering is newest-first (``last_scanned_at DESC, sha256``); the
        response envelope carries ``next_cursor`` (null on the final page),
        and passing it back as ``cursor=`` resumes exactly after the last
        returned row -- stable under concurrent writers, unlike an OFFSET.
        ``limit`` is accepted as a legacy alias for ``page_size``.
        """
        registry = self._require_registry()
        from repro.registry.store import RegistryError

        def single(name: str) -> Optional[str]:
            values = params.pop(name, None)
            if values is None:
                return None
            if len(values) != 1:
                raise _RequestError(400, f"{name} given more than once")
            return values[0]

        def number(name: str) -> Optional[float]:
            value = single(name)
            if value is None:
                return None
            try:
                return float(value)
            except ValueError:
                raise _RequestError(
                    400, f"{name} must be a number, not {value!r}"
                ) from None

        query = {
            "verdict": single("verdict"),
            "platform": single("platform"),
            "path_glob": single("path_glob"),
            "tag": single("tag"),
            "sha256_prefix": single("sha256_prefix"),
            "min_score": number("min_score"),
            "max_score": number("max_score"),
            "since": number("since"),
            "until": number("until"),
        }
        cursor = single("cursor")
        page_size = number("page_size")
        if page_size is None:
            # legacy alias from the offset-era listing; same meaning now
            page_size = number("limit")
        page_size = (
            VERDICTS_PAGE_SIZE if page_size is None else int(page_size)
        )
        if not 1 <= page_size <= VERDICTS_MAX_PAGE_SIZE:
            raise _RequestError(
                400,
                f"page_size must be in [1, {VERDICTS_MAX_PAGE_SIZE}], "
                f"not {page_size}",
            )
        if params:
            raise _RequestError(
                400, f"unknown query parameters {sorted(params)}"
            )
        try:
            rows, next_cursor = registry.query_page(
                cursor=cursor, page_size=page_size, **query
            )
        except RegistryError as error:
            code = (
                "invalid_cursor"
                if "cursor" in str(error)
                else "bad_request"
            )
            raise _RequestError(400, str(error), code=code) from error
        return {
            "count": len(rows),
            "verdicts": [row.to_dict() for row in rows],
            "next_cursor": next_cursor,
        }

    def verdicts_detail(self, sha256: str) -> Dict[str, object]:
        """``GET /v1/verdicts/<sha256>`` -- one row plus its scan history."""
        registry = self._require_registry()
        row = registry.get(sha256)
        if row is None:
            raise _RequestError(
                404,
                f"no verdict recorded for {sha256!r} under the current "
                f"graph fingerprint",
            )
        payload = row.to_dict()
        payload["history"] = registry.history(sha256)
        return payload

    def _require_registry(self):
        if self.registry is None:
            raise _RequestError(
                503,
                "no verdict registry attached; start the server with "
                "registry=... (CLI: scamdetect serve --registry PATH)",
                code="no_registry",
            )
        return self.registry

    # -------------------------------------------------------------- #
    # lifecycle

    def start(self) -> "ScanServer":
        """Start the shard pool (if any), the coalescer, the worker pool
        and the accept loop."""
        if self._started:
            raise RuntimeError("ScanServer.start called twice")
        self._started = True
        if self.sharded is not None:
            # fork the shard replicas before any server thread exists, so
            # the children never inherit a mid-transaction thread state
            try:
                self.sharded.start()
            except Exception:
                # nothing else has started: flip back so shutdown() takes
                # the short path -- the full path would block forever in
                # _httpd.shutdown(), whose event only serve_forever() sets
                self._started = False
                raise
        self.coalescer.start()
        if self.ingest is not None:
            self.ingest.start()
        self._httpd.start_workers()
        self._accept_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="scamdetect-accept",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Block the calling thread until :meth:`shutdown` (or a signal)."""
        if not self._started:
            self.start()
        while not self._stop_requested.wait(0.2):
            pass

    def shutdown(self) -> None:
        """Graceful stop: accept no new connections, answer everything
        already accepted, drain the inference queue, release the socket,
        and hand the detector back with its original cache."""
        if not self._started or self._stopped:
            self._stopped = True
            self._stop_requested.set()
            self._httpd.server_close()
            if self.ingest is not None:
                self.ingest.close(drain=False)
            if self.sharded is not None:
                self.sharded.close()
            self._restore_cache()
            return
        self._stopped = True
        self._stop_requested.set()
        self._httpd.shutdown()  # stops the accept loop
        if self._accept_thread is not None:
            self._accept_thread.join()
        self._httpd.stop_workers()  # drains accepted connections
        if self.ingest is not None:
            # after the worker pool: no more pushes can land; drain the
            # queued backlog so a SIGTERM never strands admitted work
            self.ingest.close(drain=True)
        self.coalescer.close()  # drains queued inference work
        if self.sharded is not None:
            self.sharded.close()  # after the coalescer: no new work
        self._httpd.server_close()
        self._restore_cache()

    def _restore_cache(self) -> None:
        # direct assignment like ScamDetector.scan_many's restore: the
        # previous cache (or None) was attached to this very pipeline, so it
        # needs no re-validation
        self.detector.pipeline.graph_cache = self._previous_cache

    def __enter__(self) -> "ScanServer":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.shutdown()
