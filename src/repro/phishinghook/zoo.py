"""The 16-model PhishingHook zoo: 4 feature encodings x 4 classifier families."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.features.base import FeatureExtractor
from repro.features.image_encoding import ByteImageExtractor
from repro.features.ngrams import NgramExtractor
from repro.features.opcode_histogram import OpcodeHistogramExtractor
from repro.features.tfidf import TfidfExtractor
from repro.ml.base import Classifier
from repro.ml.gradient_boosting import GradientBoostingClassifier
from repro.ml.knn import KNearestNeighbors
from repro.ml.logistic_regression import LogisticRegression
from repro.ml.mlp import MLPClassifier
from repro.ml.naive_bayes import GaussianNaiveBayes, MultinomialNaiveBayes
from repro.ml.random_forest import RandomForestClassifier
from repro.ml.svm import LinearSVM


@dataclass(frozen=True)
class ZooEntry:
    """One model of the zoo: a named (extractor, classifier) pipeline.

    Attributes:
        name: Table row name, e.g. ``"histogram+random-forest"``.
        encoding: The feature-encoding family ("histogram", "ngram", "tfidf",
            "byteimage").
        make_extractor: Factory for a fresh feature extractor.
        make_classifier: Factory for a fresh classifier.
        scale_features: Whether to standardize features before the classifier
            (distance- and gradient-based models want this; tree and count
            models do not).
    """

    name: str
    encoding: str
    make_extractor: Callable[[], FeatureExtractor]
    make_classifier: Callable[[], Classifier]
    scale_features: bool


def build_model_zoo(seed: int = 0) -> List[ZooEntry]:
    """Build the 16 PhishingHook pipelines evaluated in E1.

    The grid is 4 encodings x 4 classifier families; classifier
    hyper-parameters are kept modest so a full 5-fold evaluation of the whole
    zoo runs in minutes on a laptop.
    """
    histogram = lambda: OpcodeHistogramExtractor(vocabulary="mnemonic")
    histogram_counts = lambda: OpcodeHistogramExtractor(vocabulary="mnemonic",
                                                        normalize=False)
    bigram = lambda: NgramExtractor(n=2, top_k=192)
    tfidf = lambda: TfidfExtractor(n=2, top_k=192)
    byteimage = lambda: ByteImageExtractor(side=12)

    return [
        # opcode histogram encodings
        ZooEntry("histogram+random-forest", "histogram", histogram,
                 lambda: RandomForestClassifier(n_estimators=40, random_state=seed), False),
        ZooEntry("histogram+logistic-regression", "histogram", histogram,
                 lambda: LogisticRegression(epochs=250), True),
        ZooEntry("histogram+linear-svm", "histogram", histogram,
                 lambda: LinearSVM(epochs=80, random_state=seed), True),
        ZooEntry("histogram+knn", "histogram", histogram,
                 lambda: KNearestNeighbors(k=5), True),
        # opcode bigram encodings
        ZooEntry("2gram+random-forest", "ngram", bigram,
                 lambda: RandomForestClassifier(n_estimators=40, random_state=seed), False),
        ZooEntry("2gram+multinomial-nb", "ngram",
                 lambda: NgramExtractor(n=2, top_k=192, normalize=False),
                 lambda: MultinomialNaiveBayes(alpha=0.5), False),
        ZooEntry("2gram+gradient-boosting", "ngram", bigram,
                 lambda: GradientBoostingClassifier(n_estimators=40, random_state=seed), False),
        ZooEntry("2gram+mlp", "ngram", bigram,
                 lambda: MLPClassifier(hidden_sizes=(48,), epochs=60, random_state=seed), True),
        # tf-idf encodings
        ZooEntry("tfidf+logistic-regression", "tfidf", tfidf,
                 lambda: LogisticRegression(epochs=250), False),
        ZooEntry("tfidf+linear-svm", "tfidf", tfidf,
                 lambda: LinearSVM(epochs=80, random_state=seed), False),
        ZooEntry("tfidf+knn", "tfidf", tfidf,
                 lambda: KNearestNeighbors(k=5, metric="cosine"), False),
        ZooEntry("tfidf+random-forest", "tfidf", tfidf,
                 lambda: RandomForestClassifier(n_estimators=40, random_state=seed), False),
        # byte-image ("vision") encodings
        ZooEntry("byteimage+mlp", "byteimage", byteimage,
                 lambda: MLPClassifier(hidden_sizes=(64,), epochs=60, random_state=seed), True),
        ZooEntry("byteimage+random-forest", "byteimage", byteimage,
                 lambda: RandomForestClassifier(n_estimators=40, random_state=seed), False),
        ZooEntry("byteimage+gaussian-nb", "byteimage", byteimage,
                 lambda: GaussianNaiveBayes(), True),
        ZooEntry("byteimage+gradient-boosting", "byteimage", byteimage,
                 lambda: GradientBoostingClassifier(n_estimators=40, random_state=seed), False),
    ]
