"""PhishingHook baseline: the 16-model opcode/bytecode classification zoo.

Reproduces the prior-work system the paper builds on: a benchmark of sixteen
classification pipelines (feature encoding x classifier family) over smart
contract bytecode, whose average detection accuracy of roughly 90% is the
E1 headline number.
"""

from repro.phishinghook.zoo import ZooEntry, build_model_zoo
from repro.phishinghook.framework import PhishingHookFramework, ModelEvaluation

__all__ = [
    "ZooEntry",
    "build_model_zoo",
    "PhishingHookFramework",
    "ModelEvaluation",
]
