"""The PhishingHook evaluation framework (cross-validated model zoo runs)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.corpus import Corpus
from repro.datasets.splits import k_fold_indices
from repro.ml.metrics import classification_summary
from repro.ml.preprocessing import StandardScaler
from repro.phishinghook.zoo import ZooEntry, build_model_zoo


@dataclass
class ModelEvaluation:
    """Cross-validated metrics of one zoo entry.

    Attributes:
        name: Zoo-entry name.
        encoding: Feature-encoding family.
        fold_metrics: Per-fold metric dicts (accuracy, precision, recall, f1,
            roc_auc).
        mean_metrics: Metric means across folds.
    """

    name: str
    encoding: str
    fold_metrics: List[Dict[str, float]] = field(default_factory=list)
    mean_metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        return self.mean_metrics.get("accuracy", float("nan"))


class PhishingHookFramework:
    """Runs the 16-model zoo over a corpus with stratified cross-validation.

    Args:
        folds: Number of cross-validation folds.
        seed: Seed controlling fold assignment and model randomness.
        entries: Optional custom zoo (defaults to the full 16-model grid).
    """

    def __init__(self, folds: int = 5, seed: int = 0,
                 entries: Optional[Sequence[ZooEntry]] = None) -> None:
        self.folds = folds
        self.seed = seed
        self.entries = list(entries) if entries is not None else build_model_zoo(seed)

    # ------------------------------------------------------------------ #

    def evaluate_entry(self, entry: ZooEntry, corpus: Corpus) -> ModelEvaluation:
        """Cross-validate a single zoo entry over ``corpus``."""
        labels = np.asarray(corpus.labels())
        evaluation = ModelEvaluation(name=entry.name, encoding=entry.encoding)
        folds = k_fold_indices(len(corpus), labels.tolist(), k=self.folds, seed=self.seed)
        for train_indices, test_indices in folds:
            train_corpus = corpus.subset(train_indices)
            test_corpus = corpus.subset(test_indices)
            extractor = entry.make_extractor()
            X_train = extractor.fit_transform(train_corpus)
            X_test = extractor.transform(test_corpus)
            if entry.scale_features:
                scaler = StandardScaler()
                X_train = scaler.fit_transform(X_train)
                X_test = scaler.transform(X_test)
            classifier = entry.make_classifier()
            classifier.fit(X_train, labels[train_indices])
            predictions = classifier.predict(X_test)
            probabilities = classifier.predict_proba(X_test)
            positive_column = int(np.flatnonzero(classifier.classes_ == 1)[0]) \
                if 1 in classifier.classes_ else probabilities.shape[1] - 1
            evaluation.fold_metrics.append(classification_summary(
                labels[test_indices], predictions,
                scores=probabilities[:, positive_column]))
        metric_names = evaluation.fold_metrics[0].keys()
        evaluation.mean_metrics = {
            metric: float(np.mean([fold[metric] for fold in evaluation.fold_metrics]))
            for metric in metric_names}
        return evaluation

    def evaluate(self, corpus: Corpus,
                 entry_names: Optional[Sequence[str]] = None) -> List[ModelEvaluation]:
        """Cross-validate every (or the named) zoo entries over ``corpus``."""
        selected = self.entries
        if entry_names is not None:
            wanted = set(entry_names)
            selected = [entry for entry in self.entries if entry.name in wanted]
        return [self.evaluate_entry(entry, corpus) for entry in selected]

    @staticmethod
    def average_accuracy(evaluations: Sequence[ModelEvaluation]) -> float:
        """The zoo-wide average accuracy (the paper's ~90% headline number)."""
        if not evaluations:
            return float("nan")
        return float(np.mean([evaluation.accuracy for evaluation in evaluations]))
