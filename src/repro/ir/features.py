"""Feature encoders over the platform-agnostic CFG.

Two encoders are provided:

* :func:`node_feature_matrix` -- per-basic-block feature vectors used as GNN
  node features.
* :func:`graph_feature_vector` -- a fixed-size structural descriptor of the
  whole CFG used by classical (non-graph) models and by the E7 ablation.
"""

from __future__ import annotations


import numpy as np

from repro.ir.cfg import ControlFlowGraph
from repro.ir.normalization import CATEGORY_VOCABULARY, category_index

#: Security-relevant semantic markers.  Each marker is a presence bit per
#: basic block, computed from platform mnemonics.  Markers capture behaviour
#: that obfuscators cannot remove or counterfeit without changing the
#: contract's semantics (an obfuscator can pad a block with arithmetic, but it
#: cannot take the DELEGATECALL out of a backdoor or add a SELFDESTRUCT to a
#: benign token without breaking it), which is what makes CFG-level models
#: robust where opcode-frequency models are not.
SEMANTIC_MARKERS = (
    ("origin_check", {"ORIGIN"}),
    ("caller_check", {"CALLER"}),
    ("self_destruct", {"SELFDESTRUCT", "unreachable"}),
    ("delegate_call", {"DELEGATECALL", "CALLCODE", "call_indirect"}),
    ("external_call", {"CALL", "STATICCALL", "call"}),
    ("contract_creation", {"CREATE", "CREATE2"}),
    ("storage_write", {"SSTORE", "global.set"}),
    ("storage_read", {"SLOAD", "global.get"}),
    ("hashing", {"SHA3"}),
    ("balance_probe", {"BALANCE", "SELFBALANCE"}),
    ("code_introspection", {"EXTCODESIZE", "EXTCODEHASH", "EXTCODECOPY",
                            "memory.grow"}),
    ("event_log", {"LOG0", "LOG1", "LOG2", "LOG3", "LOG4"}),
    ("block_context", {"TIMESTAMP", "NUMBER", "PREVRANDAO"}),
    ("calldata_access", {"CALLDATALOAD", "CALLDATACOPY"}),
    ("value_check", {"CALLVALUE"}),
)

#: Number of structural features appended to the per-block category histogram.
NUM_STRUCTURAL_FEATURES = 6
_STRUCTURAL_FEATURES = NUM_STRUCTURAL_FEATURES

#: Dimensionality of the node feature vectors produced by node_feature_matrix.
NODE_FEATURE_DIM = (len(CATEGORY_VOCABULARY) + len(SEMANTIC_MARKERS)
                    + _STRUCTURAL_FEATURES)


def marker_vector(mnemonics) -> np.ndarray:
    """Presence bits of every :data:`SEMANTIC_MARKERS` group in ``mnemonics``."""
    present = set(mnemonics)
    return np.array([1.0 if present & group else 0.0
                     for _, group in SEMANTIC_MARKERS], dtype=np.float64)


def node_feature_matrix(cfg: ControlFlowGraph,
                        mode: str = "presence",
                        include_markers: bool = True,
                        include_structural: bool = True) -> np.ndarray:
    """Build the node feature matrix of ``cfg``.

    Each basic block becomes one row.  The first ``len(CATEGORY_VOCABULARY)``
    columns encode the block's instruction-category content; the remaining
    columns are structural features: block size, in-degree, out-degree,
    whether the block is the entry, whether it is an exit, and whether it
    ends in a conditional branch.

    Category encodings (``mode``):
      * ``"presence"`` (default) -- 1.0 if the block contains at least one
        instruction of the category.  This is the obfuscation-robust encoding
        used by the ScamDetect pipeline: junk instructions inserted into a
        block cannot erase the presence of the block's real behaviour, they
        can only switch additional (mostly stack/arithmetic) bits on.
      * ``"fraction"`` -- the L1-normalized category histogram (sensitive to
        dead-code dilution; used by the E7 node-feature ablation).
      * ``"count"`` -- log1p of the raw category counts.

    Args:
        cfg: The control-flow graph.
        mode: Category encoding, see above.
        include_markers: Include the :data:`SEMANTIC_MARKERS` presence bits
            (ablated in E7; they are the main carrier of obfuscation-robust
            signal).
        include_structural: Include the structural columns (ablated in E7).

    Returns:
        Array of shape ``(num_blocks, width)`` where ``width`` is
        :data:`NODE_FEATURE_DIM` when both optional groups are enabled; rows
        are ordered by block id.
    """
    if mode not in ("presence", "fraction", "count"):
        raise ValueError(f"unknown node-feature mode {mode!r}")
    blocks = cfg.blocks
    n_cat = len(CATEGORY_VOCABULARY)
    n_marker = len(SEMANTIC_MARKERS) if include_markers else 0
    width = n_cat + n_marker + (_STRUCTURAL_FEATURES if include_structural else 0)
    features = np.zeros((max(len(blocks), 1), width), dtype=np.float64)
    if not blocks:
        return features

    structural_offset = n_cat + n_marker
    max_size = max(len(b) for b in blocks) or 1
    for row, block in enumerate(blocks):
        for category, count in block.category_counts().items():
            features[row, category_index(category)] = count
        if mode == "presence":
            features[row, :n_cat] = (features[row, :n_cat] > 0).astype(np.float64)
        elif mode == "fraction" and len(block) > 0:
            features[row, :n_cat] /= float(len(block))
        elif mode == "count":
            features[row, :n_cat] = np.log1p(features[row, :n_cat])
        if include_markers:
            features[row, n_cat:structural_offset] = marker_vector(block.mnemonics())
        if include_structural:
            terminator = block.terminator
            features[row, structural_offset + 0] = len(block) / float(max_size)
            features[row, structural_offset + 1] = min(cfg.in_degree(block.block_id), 8) / 8.0
            features[row, structural_offset + 2] = min(cfg.out_degree(block.block_id), 8) / 8.0
            features[row, structural_offset + 3] = 1.0 if block.block_id == cfg.entry_id else 0.0
            features[row, structural_offset + 4] = (
                1.0 if cfg.out_degree(block.block_id) == 0 else 0.0)
            features[row, structural_offset + 5] = (
                1.0 if terminator is not None and terminator.category == "control"
                and cfg.out_degree(block.block_id) >= 2 else 0.0)
    return features


def graph_feature_vector(cfg: ControlFlowGraph) -> np.ndarray:
    """Build a fixed-size structural descriptor of the whole CFG.

    The descriptor contains the global category distribution, size statistics
    (blocks, edges, instructions), degree statistics, the number of exit
    blocks and the cyclomatic complexity.  It is used by classical models as a
    "CFG-aware but flat" representation and in reports.

    Returns:
        1-D array of length ``len(CATEGORY_VOCABULARY) + 8``.
    """
    n_cat = len(CATEGORY_VOCABULARY)
    vec = np.zeros(n_cat + 8, dtype=np.float64)
    blocks = cfg.blocks
    total_instructions = cfg.num_instructions
    for block in blocks:
        for category, count in block.category_counts().items():
            vec[category_index(category)] += count
    if total_instructions:
        vec[:n_cat] /= float(total_instructions)

    out_degrees = [cfg.out_degree(b.block_id) for b in blocks] or [0]
    in_degrees = [cfg.in_degree(b.block_id) for b in blocks] or [0]
    vec[n_cat + 0] = np.log1p(cfg.num_blocks)
    vec[n_cat + 1] = np.log1p(cfg.num_edges)
    vec[n_cat + 2] = np.log1p(total_instructions)
    vec[n_cat + 3] = float(np.mean(out_degrees))
    vec[n_cat + 4] = float(np.max(out_degrees))
    vec[n_cat + 5] = float(np.mean(in_degrees))
    vec[n_cat + 6] = np.log1p(len(cfg.terminal_blocks()))
    vec[n_cat + 7] = np.log1p(cfg.cyclomatic_complexity())
    return vec


def adjacency_with_self_loops(cfg: ControlFlowGraph,
                              symmetric: bool = True) -> np.ndarray:
    """Dense adjacency matrix with self loops, optionally symmetrized.

    GNN layers expect an adjacency matrix aligned with the rows of
    :func:`node_feature_matrix` (blocks sorted by block id).

    Args:
        cfg: The control-flow graph.
        symmetric: If True the matrix is symmetrized (A | A^T), which is the
            convention used by GCN/GraphSAGE-style spectral layers on directed
            program graphs.
    """
    adjacency = np.asarray(cfg.adjacency_matrix(), dtype=np.float64)
    if adjacency.size == 0:
        return np.ones((1, 1), dtype=np.float64)
    if symmetric:
        adjacency = np.maximum(adjacency, adjacency.T)
    np.fill_diagonal(adjacency, 1.0)
    return adjacency


def normalized_adjacency(cfg: ControlFlowGraph, symmetric: bool = True) -> np.ndarray:
    """Symmetrically-normalized adjacency D^-1/2 (A + I) D^-1/2 (GCN convention)."""
    adjacency = adjacency_with_self_loops(cfg, symmetric=symmetric)
    degrees = adjacency.sum(axis=1)
    degrees[degrees == 0] = 1.0
    inv_sqrt = 1.0 / np.sqrt(degrees)
    return adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]
