"""Platform-agnostic instruction model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class IRInstruction:
    """A single lowered instruction, independent of the source platform.

    Attributes:
        offset: Byte offset (EVM) or instruction index (WASM) in the original
            code stream.  Offsets are unique within one code unit and are used
            as jump targets / basic-block identifiers.
        mnemonic: The platform mnemonic (e.g. ``"PUSH1"``, ``"i32.add"``).
        category: Normalized semantic category (see
            :mod:`repro.ir.normalization`).  Everything downstream of the
            frontends keys on this field, never on the raw mnemonic.
        operand: Immediate operand value, if any (int for numeric immediates).
        size: Number of bytes the instruction occupies in the encoded stream.
        platform: ``"evm"`` or ``"wasm"``.
    """

    offset: int
    mnemonic: str
    category: str
    operand: Optional[int] = None
    size: int = 1
    platform: str = "evm"

    @property
    def end_offset(self) -> int:
        """Offset of the first byte after this instruction."""
        return self.offset + self.size

    def with_offset(self, offset: int) -> "IRInstruction":
        """Return a copy of this instruction relocated to ``offset``."""
        return IRInstruction(offset=offset, mnemonic=self.mnemonic,
                             category=self.category, operand=self.operand,
                             size=self.size, platform=self.platform)

    def __str__(self) -> str:
        if self.operand is not None:
            return f"{self.offset:#06x}: {self.mnemonic} {self.operand:#x}"
        return f"{self.offset:#06x}: {self.mnemonic}"
