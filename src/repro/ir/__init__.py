"""Platform-agnostic intermediate representation (IR).

The IR is the seam that makes ScamDetect platform-agnostic: both the EVM and
the WASM frontends lower their bytecode into the same
:class:`~repro.ir.instruction.IRInstruction` / :class:`~repro.ir.cfg.ControlFlowGraph`
model, and everything downstream (features, classical ML, GNNs, the detection
pipeline) only ever consumes this representation.
"""

from repro.ir.instruction import IRInstruction
from repro.ir.basic_block import BasicBlock
from repro.ir.cfg import ControlFlowGraph, CFGEdge
from repro.ir.normalization import (
    CATEGORY_VOCABULARY,
    category_index,
    normalize_category,
)
from repro.ir.features import (
    node_feature_matrix,
    graph_feature_vector,
    NODE_FEATURE_DIM,
)

__all__ = [
    "IRInstruction",
    "BasicBlock",
    "ControlFlowGraph",
    "CFGEdge",
    "CATEGORY_VOCABULARY",
    "category_index",
    "normalize_category",
    "node_feature_matrix",
    "graph_feature_vector",
    "NODE_FEATURE_DIM",
]
