"""Basic blocks of the platform-agnostic CFG."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.ir.instruction import IRInstruction


@dataclass
class BasicBlock:
    """A maximal straight-line sequence of IR instructions.

    Attributes:
        block_id: Identifier of the block; by convention the offset of its
            first instruction.
        instructions: The instructions of the block, in program order.
        is_entry: True for the entry block of the code unit.
    """

    block_id: int
    instructions: List[IRInstruction] = field(default_factory=list)
    is_entry: bool = False

    @property
    def start_offset(self) -> int:
        """Offset of the first instruction (== block_id for frontend-built blocks)."""
        if not self.instructions:
            return self.block_id
        return self.instructions[0].offset

    @property
    def end_offset(self) -> int:
        """Offset one past the last instruction of the block."""
        if not self.instructions:
            return self.block_id
        return self.instructions[-1].end_offset

    @property
    def terminator(self) -> IRInstruction | None:
        """The last instruction of the block, or None if the block is empty."""
        return self.instructions[-1] if self.instructions else None

    def __len__(self) -> int:
        return len(self.instructions)

    def mnemonics(self) -> List[str]:
        """Mnemonics of all instructions in program order."""
        return [ins.mnemonic for ins in self.instructions]

    def categories(self) -> List[str]:
        """Normalized categories of all instructions in program order."""
        return [ins.category for ins in self.instructions]

    def category_counts(self) -> Dict[str, int]:
        """Histogram of instruction categories within the block."""
        counts: Dict[str, int] = {}
        for ins in self.instructions:
            counts[ins.category] = counts.get(ins.category, 0) + 1
        return counts

    def __str__(self) -> str:
        lines = [f"block {self.block_id:#06x} ({len(self.instructions)} instrs)"]
        lines.extend(f"  {ins}" for ins in self.instructions)
        return "\n".join(lines)
