"""Control-flow graph model shared by the EVM and WASM frontends."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set

import networkx as nx

from repro.ir.basic_block import BasicBlock


@dataclass(frozen=True)
class CFGEdge:
    """A directed control-flow edge between two basic blocks.

    Attributes:
        source: block_id of the source block.
        target: block_id of the target block.
        kind: Edge kind -- one of ``"fallthrough"``, ``"jump"``, ``"branch"``
            (conditional taken edge), ``"call"`` or ``"dynamic"`` (conservative
            edge added for unresolved indirect jumps).
    """

    source: int
    target: int
    kind: str = "jump"


class ControlFlowGraph:
    """A control-flow graph over :class:`BasicBlock` nodes.

    The graph is platform-agnostic: it is produced by the EVM and WASM
    frontends and consumed by feature extractors and GNN models.  Blocks are
    keyed by their ``block_id``.
    """

    def __init__(self, platform: str = "evm", name: str = "") -> None:
        self.platform = platform
        self.name = name
        self._blocks: Dict[int, BasicBlock] = {}
        self._edges: List[CFGEdge] = []
        self._succ: Dict[int, List[CFGEdge]] = {}
        self._pred: Dict[int, List[CFGEdge]] = {}
        self.entry_id: Optional[int] = None

    # ------------------------------------------------------------------ #
    # construction

    def add_block(self, block: BasicBlock) -> None:
        """Insert a basic block; the first block added becomes the entry."""
        if block.block_id in self._blocks:
            raise ValueError(f"duplicate block id {block.block_id:#x}")
        self._blocks[block.block_id] = block
        self._succ.setdefault(block.block_id, [])
        self._pred.setdefault(block.block_id, [])
        if self.entry_id is None or block.is_entry:
            if block.is_entry or self.entry_id is None:
                self.entry_id = block.block_id if block.is_entry else self.entry_id
        if self.entry_id is None:
            self.entry_id = block.block_id

    def add_edge(self, source: int, target: int, kind: str = "jump") -> None:
        """Insert a directed edge.  Both endpoints must already exist."""
        if source not in self._blocks:
            raise KeyError(f"unknown source block {source:#x}")
        if target not in self._blocks:
            raise KeyError(f"unknown target block {target:#x}")
        edge = CFGEdge(source=source, target=target, kind=kind)
        if any(e.target == target and e.kind == kind for e in self._succ[source]):
            return
        self._edges.append(edge)
        self._succ[source].append(edge)
        self._pred[target].append(edge)

    # ------------------------------------------------------------------ #
    # queries

    @property
    def blocks(self) -> List[BasicBlock]:
        """All blocks, ordered by block_id."""
        return [self._blocks[k] for k in sorted(self._blocks)]

    @property
    def edges(self) -> List[CFGEdge]:
        """All edges in insertion order."""
        return list(self._edges)

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def num_instructions(self) -> int:
        return sum(len(b) for b in self._blocks.values())

    def block(self, block_id: int) -> BasicBlock:
        return self._blocks[block_id]

    def has_block(self, block_id: int) -> bool:
        return block_id in self._blocks

    def successors(self, block_id: int) -> List[int]:
        return [e.target for e in self._succ.get(block_id, [])]

    def predecessors(self, block_id: int) -> List[int]:
        return [e.source for e in self._pred.get(block_id, [])]

    def out_degree(self, block_id: int) -> int:
        return len(self._succ.get(block_id, []))

    def in_degree(self, block_id: int) -> int:
        return len(self._pred.get(block_id, []))

    def entry_block(self) -> BasicBlock:
        if self.entry_id is None:
            raise ValueError("empty control-flow graph has no entry block")
        return self._blocks[self.entry_id]

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._blocks

    # ------------------------------------------------------------------ #
    # traversal and analysis

    def reachable_blocks(self, start: Optional[int] = None) -> Set[int]:
        """Set of block ids reachable from ``start`` (default: the entry)."""
        if not self._blocks:
            return set()
        start_id = self.entry_id if start is None else start
        seen: Set[int] = set()
        stack = [start_id]
        while stack:
            node = stack.pop()
            if node in seen or node not in self._blocks:
                continue
            seen.add(node)
            stack.extend(self.successors(node))
        return seen

    def depth_first_order(self) -> List[int]:
        """Blocks in depth-first preorder from the entry block."""
        if not self._blocks:
            return []
        order: List[int] = []
        seen: Set[int] = set()
        stack = [self.entry_id]
        while stack:
            node = stack.pop()
            if node in seen or node is None:
                continue
            seen.add(node)
            order.append(node)
            stack.extend(reversed(self.successors(node)))
        return order

    def terminal_blocks(self) -> List[int]:
        """Block ids with no successors (program exit points)."""
        return [bid for bid in sorted(self._blocks) if not self._succ.get(bid)]

    def adjacency_matrix(self) -> "list[list[int]]":
        """Dense adjacency matrix over blocks sorted by block_id."""
        order = sorted(self._blocks)
        index = {bid: i for i, bid in enumerate(order)}
        matrix = [[0] * len(order) for _ in order]
        for edge in self._edges:
            matrix[index[edge.source]][index[edge.target]] = 1
        return matrix

    def to_networkx(self) -> nx.DiGraph:
        """Export to a :class:`networkx.DiGraph` (block ids as nodes)."""
        graph = nx.DiGraph(platform=self.platform, name=self.name)
        for block in self.blocks:
            graph.add_node(block.block_id, size=len(block),
                           categories=block.category_counts())
        for edge in self._edges:
            graph.add_edge(edge.source, edge.target, kind=edge.kind)
        return graph

    def cyclomatic_complexity(self) -> int:
        """McCabe cyclomatic complexity: E - N + 2 (single connected component)."""
        if not self._blocks:
            return 0
        return max(1, self.num_edges - self.num_blocks + 2)

    def instruction_mnemonics(self) -> List[str]:
        """All instruction mnemonics in block order (used by sequence baselines)."""
        result: List[str] = []
        for block in self.blocks:
            result.extend(block.mnemonics())
        return result

    def validate(self) -> None:
        """Check structural invariants; raise ValueError on violation.

        Invariants checked:
          * every edge endpoint refers to an existing block,
          * the entry block exists,
          * block ids match the offset of their first instruction (when the
            block is non-empty).
        """
        if self._blocks and (self.entry_id is None or self.entry_id not in self._blocks):
            raise ValueError("entry block missing")
        for edge in self._edges:
            if edge.source not in self._blocks or edge.target not in self._blocks:
                raise ValueError(f"dangling edge {edge}")
        for block in self._blocks.values():
            if block.instructions and block.instructions[0].offset != block.block_id:
                raise ValueError(
                    f"block id {block.block_id:#x} does not match first "
                    f"instruction offset {block.instructions[0].offset:#x}")

    def summary(self) -> Dict[str, int]:
        """Small structural summary used in reports and tests."""
        return {
            "blocks": self.num_blocks,
            "edges": self.num_edges,
            "instructions": self.num_instructions,
            "exits": len(self.terminal_blocks()),
            "cyclomatic_complexity": self.cyclomatic_complexity(),
        }

    def __str__(self) -> str:
        return (f"ControlFlowGraph({self.platform}, blocks={self.num_blocks}, "
                f"edges={self.num_edges}, instructions={self.num_instructions})")
