"""Normalization of platform-specific opcodes into a shared category vocabulary.

The category vocabulary is the contract between the platform frontends
(:mod:`repro.evm`, :mod:`repro.wasm`) and everything downstream.  Each
frontend annotates the instructions it emits with one of the categories
below; feature extraction and GNN node features are computed over this
vocabulary only, which is what allows a model trained per-platform to be
served by the same pipeline on either platform.
"""

from __future__ import annotations

from typing import Dict, List

#: Ordered category vocabulary.  The order is part of the public contract --
#: feature vectors index into it positionally.
CATEGORY_VOCABULARY: List[str] = [
    "arithmetic",
    "comparison",
    "bitwise",
    "crypto",
    "environment",
    "block",
    "stack",
    "memory",
    "storage",
    "control",
    "call",
    "create",
    "log",
    "terminator",
    "invalid",
    "local",      # WASM locals (no EVM equivalent; EVM never emits it)
    "constant",   # WASM const instructions
    "conversion", # WASM numeric conversions
]

_CATEGORY_INDEX: Dict[str, int] = {c: i for i, c in enumerate(CATEGORY_VOCABULARY)}

#: Aliases tolerated from frontends or external tooling.
_ALIASES: Dict[str, str] = {
    "arith": "arithmetic",
    "cmp": "comparison",
    "bit": "bitwise",
    "env": "environment",
    "mem": "memory",
    "store": "storage",
    "flow": "control",
    "halt": "terminator",
    "const": "constant",
    "convert": "conversion",
    "unknown": "invalid",
}


def normalize_category(category: str) -> str:
    """Map a frontend-provided category (or alias) onto the shared vocabulary.

    Unknown categories map to ``"invalid"`` instead of raising so that a
    frontend emitting a new category degrades gracefully rather than
    breaking feature extraction.
    """
    category = category.strip().lower()
    if category in _CATEGORY_INDEX:
        return category
    return _ALIASES.get(category, "invalid")


def category_index(category: str) -> int:
    """Positional index of ``category`` in :data:`CATEGORY_VOCABULARY`."""
    return _CATEGORY_INDEX[normalize_category(category)]


def num_categories() -> int:
    """Size of the shared category vocabulary."""
    return len(CATEGORY_VOCABULARY)
