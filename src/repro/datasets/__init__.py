"""Dataset substrate: synthetic corpus generation, dedup, splits.

Stands in for the Etherscan-scraped, ChainAbuse-labelled corpora used by
PhishingHook/ScamDetect (see DESIGN.md substitution table).  The corpus
generator draws randomized samples from the EVM and WASM contract template
families, optionally injects ERC-1167 proxy duplicates and label noise, and
can pre-obfuscate samples at a chosen intensity.
"""

from repro.datasets.labels import BENIGN, MALICIOUS, LABEL_NAMES, FamilyInfo, FAMILY_CATALOG
from repro.datasets.corpus import ContractSample, Corpus
from repro.datasets.generator import CorpusGenerator, GeneratorConfig
from repro.datasets.dedup import deduplicate, bytecode_fingerprint
from repro.datasets.splits import stratified_split, k_fold_indices

__all__ = [
    "BENIGN",
    "MALICIOUS",
    "LABEL_NAMES",
    "FamilyInfo",
    "FAMILY_CATALOG",
    "ContractSample",
    "Corpus",
    "CorpusGenerator",
    "GeneratorConfig",
    "deduplicate",
    "bytecode_fingerprint",
    "stratified_split",
    "k_fold_indices",
]
