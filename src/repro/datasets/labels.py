"""Label taxonomy for the contract corpus."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: Binary ground-truth labels used throughout the pipeline.
BENIGN = 0
MALICIOUS = 1

LABEL_NAMES: Dict[int, str] = {BENIGN: "benign", MALICIOUS: "malicious"}


@dataclass(frozen=True)
class FamilyInfo:
    """Metadata about one contract family.

    Attributes:
        name: Family identifier matching the template name.
        label: BENIGN or MALICIOUS.
        platform: "evm" or "wasm".
        kind: Coarse behavioural kind ("token", "phishing", "honeypot", ...).
        description: One-line human description used in reports.
    """

    name: str
    label: int
    platform: str
    kind: str
    description: str


FAMILY_CATALOG: List[FamilyInfo] = [
    # EVM benign
    FamilyInfo("erc20_token", BENIGN, "evm", "token",
               "Plain ERC-20 style fungible token"),
    FamilyInfo("staking_vault", BENIGN, "evm", "defi",
               "Staking vault with owner-managed reward rate"),
    FamilyInfo("dex_pair", BENIGN, "evm", "defi",
               "Constant-product AMM trading pair"),
    FamilyInfo("airdrop_distributor", BENIGN, "evm", "distribution",
               "Batched airdrop distributor with claim tracking"),
    FamilyInfo("multisig_wallet", BENIGN, "evm", "wallet",
               "Quorum-gated multi-signature wallet"),
    # EVM malicious
    FamilyInfo("approval_drainer", MALICIOUS, "evm", "phishing",
               "Phishing approval drainer sweeping victim allowances"),
    FamilyInfo("honeypot", MALICIOUS, "evm", "honeypot",
               "Honeypot with an unsatisfiable payout condition"),
    FamilyInfo("ponzi_scheme", MALICIOUS, "evm", "ponzi",
               "Ponzi contract paying old investors from new deposits"),
    FamilyInfo("rugpull_token", MALICIOUS, "evm", "rugpull",
               "Token with hidden owner fee/mint/drain escape hatches"),
    FamilyInfo("backdoor_proxy", MALICIOUS, "evm", "backdoor",
               "Contract funnelling all calls through an unguarded delegatecall"),
    # WASM benign
    FamilyInfo("wasm_token", BENIGN, "wasm", "token",
               "Fungible token (WASM runtime)"),
    FamilyInfo("wasm_staking_vault", BENIGN, "wasm", "defi",
               "Staking vault (WASM runtime)"),
    FamilyInfo("wasm_registry", BENIGN, "wasm", "registry",
               "Name/asset registry (WASM runtime)"),
    # WASM malicious
    FamilyInfo("wasm_drainer", MALICIOUS, "wasm", "phishing",
               "Approval drainer (WASM runtime)"),
    FamilyInfo("wasm_honeypot", MALICIOUS, "wasm", "honeypot",
               "Honeypot (WASM runtime)"),
    FamilyInfo("wasm_backdoor", MALICIOUS, "wasm", "backdoor",
               "call_indirect backdoor (WASM runtime)"),
    FamilyInfo("wasm_rugpull", MALICIOUS, "wasm", "rugpull",
               "Rug-pull token (WASM runtime)"),
]

FAMILIES_BY_NAME: Dict[str, FamilyInfo] = {f.name: f for f in FAMILY_CATALOG}


def family_label(name: str) -> int:
    """Ground-truth label of a family; raises KeyError for unknown families."""
    return FAMILIES_BY_NAME[name].label
