"""Contract corpus container."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.datasets.labels import LABEL_NAMES, MALICIOUS


@dataclass(frozen=True)
class ContractSample:
    """One contract in the corpus.

    Attributes:
        sample_id: Unique identifier within the corpus.
        platform: "evm" or "wasm".
        bytecode: Runtime bytecode (EVM) or binary module (WASM).
        label: Ground-truth label (0 benign / 1 malicious); may be flipped by
            injected label noise -- ``true_label`` keeps the clean value.
        family: Generating template family name.
        obfuscated: Whether the sample was passed through an obfuscator.
        obfuscation_intensity: The intensity used (0.0 when not obfuscated).
        is_proxy_duplicate: True for injected ERC-1167 proxy duplicates.
        true_label: The label before any injected label noise.
    """

    sample_id: str
    platform: str
    bytecode: bytes
    label: int
    family: str
    obfuscated: bool = False
    obfuscation_intensity: float = 0.0
    is_proxy_duplicate: bool = False
    true_label: Optional[int] = None

    @property
    def clean_label(self) -> int:
        """Label before noise injection (falls back to ``label``)."""
        return self.label if self.true_label is None else self.true_label

    @property
    def size(self) -> int:
        return len(self.bytecode)

    def sha256(self) -> str:
        return hashlib.sha256(self.bytecode).hexdigest()

    def with_bytecode(self, bytecode: bytes, obfuscated: bool = True,
                      intensity: float = 0.0) -> "ContractSample":
        """Copy of the sample with replaced bytecode (used by obfuscation)."""
        return replace(self, bytecode=bytecode, obfuscated=obfuscated,
                       obfuscation_intensity=intensity)


class Corpus:
    """An ordered collection of :class:`ContractSample` with filtering helpers."""

    def __init__(self, samples: Optional[Iterable[ContractSample]] = None,
                 name: str = "corpus") -> None:
        self.name = name
        self._samples: List[ContractSample] = list(samples or [])

    # -- container protocol ------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[ContractSample]:
        return iter(self._samples)

    def __getitem__(self, index: int) -> ContractSample:
        return self._samples[index]

    def add(self, sample: ContractSample) -> None:
        self._samples.append(sample)

    @property
    def samples(self) -> List[ContractSample]:
        return list(self._samples)

    # -- views -------------------------------------------------------------- #

    def labels(self) -> List[int]:
        return [s.label for s in self._samples]

    def bytecodes(self) -> List[bytes]:
        return [s.bytecode for s in self._samples]

    def filter(self, predicate: Callable[[ContractSample], bool],
               name: Optional[str] = None) -> "Corpus":
        return Corpus((s for s in self._samples if predicate(s)),
                      name=name or self.name)

    def by_platform(self, platform: str) -> "Corpus":
        return self.filter(lambda s: s.platform == platform,
                           name=f"{self.name}:{platform}")

    def by_label(self, label: int) -> "Corpus":
        return self.filter(lambda s: s.label == label,
                           name=f"{self.name}:{LABEL_NAMES.get(label, label)}")

    def subset(self, indices: Sequence[int], name: Optional[str] = None) -> "Corpus":
        return Corpus((self._samples[i] for i in indices), name=name or self.name)

    def map_bytecode(self, transform: Callable[[ContractSample], bytes],
                     obfuscated: bool = True, intensity: float = 0.0,
                     name: Optional[str] = None) -> "Corpus":
        """Apply ``transform`` to each sample's bytecode (e.g. an obfuscator)."""
        return Corpus(
            (s.with_bytecode(transform(s), obfuscated=obfuscated, intensity=intensity)
             for s in self._samples),
            name=name or f"{self.name}:transformed")

    # -- statistics ---------------------------------------------------------- #

    def class_balance(self) -> Dict[str, int]:
        counts = {"benign": 0, "malicious": 0}
        for sample in self._samples:
            counts["malicious" if sample.label == MALICIOUS else "benign"] += 1
        return counts

    def family_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for sample in self._samples:
            counts[sample.family] = counts.get(sample.family, 0) + 1
        return counts

    def summary(self) -> Dict[str, object]:
        balance = self.class_balance()
        sizes = [s.size for s in self._samples] or [0]
        return {
            "name": self.name,
            "samples": len(self._samples),
            "benign": balance["benign"],
            "malicious": balance["malicious"],
            "families": len(self.family_counts()),
            "mean_size_bytes": sum(sizes) / max(len(sizes), 1),
            "obfuscated": sum(1 for s in self._samples if s.obfuscated),
            "proxy_duplicates": sum(1 for s in self._samples if s.is_proxy_duplicate),
        }

    def __repr__(self) -> str:
        balance = self.class_balance()
        return (f"Corpus({self.name!r}, n={len(self)}, "
                f"benign={balance['benign']}, malicious={balance['malicious']})")
