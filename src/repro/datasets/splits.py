"""Stratified train/test splits and cross-validation folds."""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.datasets.corpus import Corpus


def stratified_split(corpus: Corpus, test_fraction: float = 0.3,
                     seed: int = 0) -> Tuple[Corpus, Corpus]:
    """Split ``corpus`` into train/test with per-class proportions preserved.

    Args:
        corpus: The corpus to split.
        test_fraction: Fraction of each class assigned to the test set.
        seed: Shuffling seed.

    Returns:
        ``(train_corpus, test_corpus)``.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = random.Random(seed)
    by_label: Dict[int, List[int]] = {}
    for index, sample in enumerate(corpus):
        by_label.setdefault(sample.label, []).append(index)

    train_indices: List[int] = []
    test_indices: List[int] = []
    for label in sorted(by_label):
        indices = by_label[label]
        rng.shuffle(indices)
        cut = max(1, int(round(len(indices) * test_fraction))) if len(indices) > 1 else 0
        test_indices.extend(indices[:cut])
        train_indices.extend(indices[cut:])
    rng.shuffle(train_indices)
    rng.shuffle(test_indices)
    return (corpus.subset(train_indices, name=f"{corpus.name}-train"),
            corpus.subset(test_indices, name=f"{corpus.name}-test"))


def k_fold_indices(num_samples: int, labels: Sequence[int], k: int = 5,
                   seed: int = 0) -> List[Tuple[List[int], List[int]]]:
    """Stratified k-fold cross-validation index pairs.

    Returns:
        A list of ``k`` pairs ``(train_indices, test_indices)``; every sample
        appears in exactly one test fold.
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    if num_samples != len(labels):
        raise ValueError("labels length must match num_samples")
    rng = random.Random(seed)
    by_label: Dict[int, List[int]] = {}
    for index, label in enumerate(labels):
        by_label.setdefault(label, []).append(index)

    folds: List[List[int]] = [[] for _ in range(k)]
    for label in sorted(by_label):
        indices = by_label[label]
        rng.shuffle(indices)
        for position, index in enumerate(indices):
            folds[position % k].append(index)

    result: List[Tuple[List[int], List[int]]] = []
    for fold_index in range(k):
        test = sorted(folds[fold_index])
        train = sorted(i for j in range(k) if j != fold_index for i in folds[j])
        result.append((train, test))
    return result
