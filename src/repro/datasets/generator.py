"""Synthetic corpus generation.

The generator draws randomized samples from the EVM/WASM template families
and assembles them into a :class:`~repro.datasets.corpus.Corpus`.  Knobs:

* class balance (fraction of malicious samples),
* ERC-1167 proxy-duplicate injection (E6 dedup ablation),
* label-noise injection (keeps headline accuracies realistic rather than
  saturating at 100%),
* per-sample obfuscation at a fixed or sampled intensity (E2-E4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.datasets.corpus import ContractSample, Corpus
from repro.datasets.labels import BENIGN, MALICIOUS
from repro.evm.contracts import ALL_TEMPLATES as EVM_TEMPLATES
from repro.obfuscation.pipeline import obfuscate_sample
from repro.wasm.contracts import WASM_ALL_TEMPLATES


@dataclass
class GeneratorConfig:
    """Configuration of a corpus generation run.

    Attributes:
        platform: "evm" or "wasm".
        num_samples: Number of contracts to generate (before proxy injection).
        malicious_fraction: Target fraction of malicious samples.
        proxy_duplicate_fraction: Fraction of *additional* samples that are
            ERC-1167 minimal proxies duplicating an already-generated sample's
            behaviour (EVM only; ignored for WASM).
        label_noise: Probability that a sample's label is flipped, emulating
            imperfect abuse-database ground truth.
        obfuscation_intensity: If > 0, every sample is obfuscated at this
            intensity.
        obfuscated_fraction: Fraction of samples to obfuscate when
            ``obfuscation_intensity`` > 0 (1.0 = all samples).
        seed: RNG seed; generation is fully deterministic given the seed.
    """

    platform: str = "evm"
    num_samples: int = 200
    malicious_fraction: float = 0.5
    proxy_duplicate_fraction: float = 0.0
    label_noise: float = 0.03
    obfuscation_intensity: float = 0.0
    obfuscated_fraction: float = 1.0
    seed: int = 0


class CorpusGenerator:
    """Generates labelled contract corpora from the template families."""

    def __init__(self, config: Optional[GeneratorConfig] = None) -> None:
        self.config = config or GeneratorConfig()
        if self.config.platform not in ("evm", "wasm"):
            raise ValueError(f"unknown platform {self.config.platform!r}")

    # ------------------------------------------------------------------ #

    def _templates(self, label: int) -> Sequence[object]:
        if self.config.platform == "evm":
            return [t for t in EVM_TEMPLATES if t.label == label]
        return [t for t in WASM_ALL_TEMPLATES if t.label == label]

    def generate(self, name: Optional[str] = None) -> Corpus:
        """Generate a corpus according to the configuration."""
        config = self.config
        rng = random.Random(config.seed)
        corpus = Corpus(name=name or f"{config.platform}-synthetic")

        num_malicious = int(round(config.num_samples * config.malicious_fraction))
        num_benign = config.num_samples - num_malicious
        plan: List[int] = [MALICIOUS] * num_malicious + [BENIGN] * num_benign
        rng.shuffle(plan)

        for index, label in enumerate(plan):
            template = rng.choice(list(self._templates(label)))
            sample_rng = random.Random(rng.randrange(1 << 30))
            bytecode = template.generate(sample_rng)

            obfuscated = False
            intensity = 0.0
            if (config.obfuscation_intensity > 0.0
                    and rng.random() < config.obfuscated_fraction):
                intensity = config.obfuscation_intensity
                bytecode = obfuscate_sample(bytecode, config.platform, intensity,
                                            seed=rng.randrange(1 << 30))
                obfuscated = True

            observed_label = label
            true_label = label
            if config.label_noise > 0.0 and rng.random() < config.label_noise:
                observed_label = 1 - label

            corpus.add(ContractSample(
                sample_id=f"{config.platform}-{index:05d}",
                platform=config.platform,
                bytecode=bytecode,
                label=observed_label,
                true_label=true_label,
                family=template.name,
                obfuscated=obfuscated,
                obfuscation_intensity=intensity,
            ))

        self._inject_proxy_duplicates(corpus, rng)
        return corpus

    # ------------------------------------------------------------------ #

    def _inject_proxy_duplicates(self, corpus: Corpus, rng: random.Random) -> None:
        """Append duplicate deployments of existing samples (EVM only).

        On public chains the same runtime bytecode is deployed over and over
        (factory clones, ERC-1167 proxies pointing at one implementation).  A
        duplicate shares its target's bytecode, label and family exactly, so
        leaving duplicates in the corpus leaks training contracts into the
        test split and inflates measured accuracy -- the effect the E6
        ablation quantifies.  The stand-alone ERC-1167 stub builder lives in
        :func:`repro.evm.contracts.make_minimal_proxy` and its collapse rule
        in :mod:`repro.datasets.dedup`.
        """
        config = self.config
        if config.platform != "evm" or config.proxy_duplicate_fraction <= 0.0:
            return
        base_samples = corpus.samples
        if not base_samples:
            return
        num_duplicates = int(round(len(base_samples) * config.proxy_duplicate_fraction))
        for index in range(num_duplicates):
            target = rng.choice(base_samples)
            corpus.add(ContractSample(
                sample_id=f"evm-clone-{index:05d}",
                platform="evm",
                bytecode=target.bytecode,
                label=target.label,
                true_label=target.clean_label,
                family=target.family,
                is_proxy_duplicate=True,
            ))


def generate_paired_clean_and_obfuscated(config: GeneratorConfig,
                                         intensity: float,
                                         name: str = "paired") -> tuple[Corpus, Corpus]:
    """Generate a clean corpus and its element-wise obfuscated counterpart.

    Both corpora contain the same underlying contracts in the same order, so
    clean-train / obfuscated-test experiments (E3, E4) measure robustness on
    identical ground truth.
    """
    clean_config = GeneratorConfig(**{**config.__dict__, "obfuscation_intensity": 0.0})
    clean = CorpusGenerator(clean_config).generate(name=f"{name}-clean")
    rng = random.Random(config.seed + 7919)
    obfuscated = clean.map_bytecode(
        lambda sample: obfuscate_sample(sample.bytecode, sample.platform, intensity,
                                        seed=rng.randrange(1 << 30)),
        obfuscated=True, intensity=intensity, name=f"{name}-obfuscated")
    return clean, obfuscated
