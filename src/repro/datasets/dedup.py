"""Corpus deduplication (ERC-1167 proxy collapsing and exact-hash removal).

The paper's Phase-1 plan calls out duplicate removal -- in particular
ERC-1167 minimal proxies -- as a prerequisite for corpus diversity; the E6
ablation measures what happens when this step is skipped.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Set, Tuple

from repro.datasets.corpus import ContractSample, Corpus
from repro.evm.contracts import is_minimal_proxy


def bytecode_fingerprint(sample: ContractSample) -> str:
    """Deduplication fingerprint of a sample.

    ERC-1167 proxies collapse onto a fingerprint derived from their family
    (all proxies of the same implementation behave identically); other
    samples use the SHA-256 of their bytecode.
    """
    if sample.platform == "evm" and is_minimal_proxy(sample.bytecode):
        return f"erc1167:{sample.family}:{sample.label}"
    return hashlib.sha256(sample.bytecode).hexdigest()


def deduplicate(corpus: Corpus, collapse_proxies: bool = True) -> Tuple[Corpus, Dict[str, int]]:
    """Remove duplicate samples from ``corpus``.

    Args:
        corpus: The input corpus (not modified).
        collapse_proxies: If True, all ERC-1167 proxies with the same family
            and label collapse into a single representative; if False only
            exact bytecode duplicates are removed.

    Returns:
        ``(deduplicated_corpus, stats)`` where ``stats`` counts the removals
        per reason (``"exact"`` and ``"proxy"``).
    """
    seen: Set[str] = set()
    kept: List[ContractSample] = []
    stats = {"exact": 0, "proxy": 0}
    for sample in corpus:
        is_proxy = sample.platform == "evm" and is_minimal_proxy(sample.bytecode)
        if is_proxy and collapse_proxies:
            key = bytecode_fingerprint(sample)
            if key in seen:
                stats["proxy"] += 1
                continue
        else:
            key = hashlib.sha256(sample.bytecode).hexdigest()
            if key in seen:
                stats["exact"] += 1
                continue
        seen.add(key)
        kept.append(sample)
    return Corpus(kept, name=f"{corpus.name}-dedup"), stats
