"""Obfuscation engines used to stress the detectors (E2-E4).

The passes implement the transformation categories described by BOSC
(bytecode-level obfuscation for smart contracts), BiAn (source-level
obfuscation lowered to the same effects) and wasm-mutate (binary
diversification for WebAssembly):

* EVM: dead-code injection, instruction substitution, opaque predicates,
  control-flow flattening, junk selector dispatchers and constant blinding.
* WASM: nop/identity injection, instruction substitution, opaque branches and
  block wrapping.

All passes are semantics-preserving for the synthetic corpus (they never
remove or reorder live effects), so the ground-truth labels remain valid
after obfuscation.  Every pass takes an ``intensity`` knob in ``[0, 1]``
controlling how aggressively it rewrites the program.
"""

from repro.obfuscation.base import ObfuscationError, ObfuscationReport
from repro.obfuscation.evm_lift import lift_bytecode_to_items
from repro.obfuscation.evm_passes import (
    DeadCodeInjection,
    InstructionSubstitution,
    OpaquePredicateInsertion,
    ControlFlowFlattening,
    JunkSelectorInsertion,
    ConstantBlinding,
    DEFAULT_EVM_PASSES,
)
from repro.obfuscation.wasm_passes import (
    WasmNopInjection,
    WasmIdentityArithmetic,
    WasmOpaqueBranch,
    WasmBlockWrapping,
    WasmConstantBlinding,
    DEFAULT_WASM_PASSES,
)
from repro.obfuscation.pipeline import EVMObfuscator, WasmObfuscator, obfuscate_sample

__all__ = [
    "ObfuscationError",
    "ObfuscationReport",
    "lift_bytecode_to_items",
    "DeadCodeInjection",
    "InstructionSubstitution",
    "OpaquePredicateInsertion",
    "ControlFlowFlattening",
    "JunkSelectorInsertion",
    "ConstantBlinding",
    "DEFAULT_EVM_PASSES",
    "WasmNopInjection",
    "WasmIdentityArithmetic",
    "WasmOpaqueBranch",
    "WasmBlockWrapping",
    "WasmConstantBlinding",
    "DEFAULT_WASM_PASSES",
    "EVMObfuscator",
    "WasmObfuscator",
    "obfuscate_sample",
]
