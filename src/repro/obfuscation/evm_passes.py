"""EVM obfuscation passes (BOSC / BiAn transformation categories).

All passes operate on the lifted assembly-item representation (see
:mod:`repro.obfuscation.evm_lift`) and are *stack-neutral*: every inserted
sequence pushes exactly what it pops and never reads values that were on the
stack before it, so the observable semantics of the victim program are
preserved and ground-truth labels stay valid.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.evm.assembler import AsmItem
from repro.obfuscation.base import EVMObfuscationPass, clamp_intensity

# --------------------------------------------------------------------------- #
# helpers


def _is_terminator_item(item: AsmItem) -> bool:
    return item[0] in ("JUMP", "STOP", "RETURN", "REVERT", "INVALID", "SELFDESTRUCT")


def _inert_snippets(rng: random.Random) -> List[AsmItem]:
    """One randomly chosen self-contained, effect-free instruction sequence."""
    choice = rng.randrange(6)
    if choice == 0:
        return [("PUSH2", rng.randrange(1 << 16)), ("POP", None)]
    if choice == 1:
        return [("CALLER", None), ("POP", None)]
    if choice == 2:
        return [("PUSH1", rng.randrange(256)), ("PUSH1", rng.randrange(256)),
                ("ADD", None), ("POP", None)]
    if choice == 3:
        return [("GAS", None), ("POP", None)]
    if choice == 4:
        return [("PUSH2", rng.randrange(1 << 16)), ("PUSH2", rng.randrange(1 << 16)),
                ("XOR", None), ("POP", None)]
    return [("TIMESTAMP", None), ("POP", None)]


def _insertion_points(items: Sequence[AsmItem]) -> List[int]:
    """Indices where a self-contained snippet may be inserted (before item i)."""
    return list(range(len(items) + 1))


class _CounterMixin:
    """Provides a per-pass unique label counter (labels must be globally unique)."""

    _counter = 0

    @classmethod
    def _fresh(cls, prefix: str) -> str:
        _CounterMixin._counter += 1
        return f"obf_{prefix}_{_CounterMixin._counter}"


# --------------------------------------------------------------------------- #
# passes


class DeadCodeInjection(EVMObfuscationPass, _CounterMixin):
    """Insert inert instruction sequences at random program points.

    Mirrors BOSC's "garbage code" transformation: it perturbs opcode
    histograms and n-gram statistics without changing behaviour.
    """

    name = "dead-code-injection"

    def __init__(self, rate: float = 0.35) -> None:
        self.rate = rate

    def apply(self, items: List[AsmItem], rng: random.Random,
              intensity: float) -> List[AsmItem]:
        intensity = clamp_intensity(intensity)
        count = int(len(items) * self.rate * intensity)
        result = list(items)
        for _ in range(count):
            position = rng.choice(_insertion_points(result))
            result[position:position] = _inert_snippets(rng)
        return result


class InstructionSubstitution(EVMObfuscationPass):
    """Replace instructions with semantically-equivalent longer sequences."""

    name = "instruction-substitution"

    _SUBSTITUTIONS = {
        "ISZERO": [("ISZERO", None), ("ISZERO", None), ("ISZERO", None)],
        "NOT": [("NOT", None), ("NOT", None), ("NOT", None)],
        "ADD": [("SWAP1", None), ("ADD", None)],
        "MUL": [("SWAP1", None), ("MUL", None)],
        "AND": [("SWAP1", None), ("AND", None)],
        "OR": [("SWAP1", None), ("OR", None)],
        "XOR": [("SWAP1", None), ("XOR", None)],
        "EQ": [("SUB", None), ("ISZERO", None)],
        "LT": [("SWAP1", None), ("GT", None)],
        "GT": [("SWAP1", None), ("LT", None)],
    }

    def apply(self, items: List[AsmItem], rng: random.Random,
              intensity: float) -> List[AsmItem]:
        intensity = clamp_intensity(intensity)
        result: List[AsmItem] = []
        for item in items:
            replacement = self._SUBSTITUTIONS.get(item[0])
            if replacement is not None and rng.random() < intensity:
                result.extend(replacement)
            else:
                result.append(item)
        return result


class OpaquePredicateInsertion(EVMObfuscationPass, _CounterMixin):
    """Insert branches whose outcome is constant but not obvious statically.

    Two shapes are used: a never-taken conditional jump into a junk handler
    (adds fake CFG edges and unreachable blocks), and an always-taken jump
    over a stretch of garbage code (adds bogus fall-through blocks).
    """

    name = "opaque-predicates"

    def __init__(self, rate: float = 0.08) -> None:
        self.rate = rate

    def apply(self, items: List[AsmItem], rng: random.Random,
              intensity: float) -> List[AsmItem]:
        intensity = clamp_intensity(intensity)
        count = max(0, int(len(items) * self.rate * intensity))
        result = list(items)
        junk_blocks: List[AsmItem] = []
        for _ in range(count):
            position = rng.choice(_insertion_points(result))
            if rng.random() < 0.5:
                # never-taken branch to a junk handler appended at the end
                handler = self._fresh("junk")
                snippet: List[AsmItem] = [
                    ("PUSH1", 0), ("PUSHLABEL", handler), ("JUMPI", None)]
                junk_blocks.extend([
                    ("LABEL", handler),
                    ("PUSH2", rng.randrange(1 << 16)), ("POP", None),
                    ("PUSH1", 0), ("PUSH1", 0), ("REVERT", None),
                ])
            else:
                # always-taken jump over dead garbage
                skip = self._fresh("skip")
                snippet = [
                    ("PUSH1", 1), ("PUSHLABEL", skip), ("JUMPI", None),
                    ("PUSH2", rng.randrange(1 << 16)),
                    ("PUSH2", rng.randrange(1 << 16)),
                    ("MUL", None), ("POP", None),
                    ("LABEL", skip),
                ]
            result[position:position] = snippet
        return result + junk_blocks


class ControlFlowFlattening(EVMObfuscationPass, _CounterMixin):
    """Break straight-line runs apart with explicit jumps.

    A lightweight form of CFG flattening: basic blocks are split at random
    points and stitched back together through unconditional jumps, so block
    sizes, counts and edge structure all change while execution order is
    preserved.
    """

    name = "control-flow-flattening"

    def __init__(self, rate: float = 0.10) -> None:
        self.rate = rate

    def apply(self, items: List[AsmItem], rng: random.Random,
              intensity: float) -> List[AsmItem]:
        intensity = clamp_intensity(intensity)
        count = max(0, int(len(items) * self.rate * intensity))
        result = list(items)
        for _ in range(count):
            if len(result) < 4:
                break
            position = rng.randrange(1, len(result))
            # do not split immediately after a PUSH that feeds a JUMP/JUMPI --
            # the inserted JUMP itself is fine, but splitting between a
            # terminator and its label would only create unreachable stubs.
            if _is_terminator_item(result[position - 1]):
                continue
            label = self._fresh("flat")
            result[position:position] = [
                ("PUSHLABEL", label), ("JUMP", None), ("LABEL", label)]
        return result


class JunkSelectorInsertion(EVMObfuscationPass, _CounterMixin):
    """Add fake function-selector comparisons at the top of the contract.

    Imitates obfuscators that bloat the dispatcher with decoy entries; the
    comparisons can never match (they compare against a constant zero), and
    their handlers are unreachable revert blocks appended at the end.
    """

    name = "junk-selectors"

    def __init__(self, max_selectors: int = 6) -> None:
        self.max_selectors = max_selectors

    def apply(self, items: List[AsmItem], rng: random.Random,
              intensity: float) -> List[AsmItem]:
        intensity = clamp_intensity(intensity)
        count = int(round(self.max_selectors * intensity))
        if count == 0:
            return list(items)
        prologue: List[AsmItem] = []
        handlers: List[AsmItem] = []
        for _ in range(count):
            handler = self._fresh("sel")
            prologue.extend([
                ("PUSH4", rng.randrange(1, 1 << 32)),
                ("PUSH1", 0),
                ("EQ", None),
                ("PUSHLABEL", handler),
                ("JUMPI", None),
            ])
            handlers.extend([
                ("LABEL", handler),
                ("PUSH1", 0), ("PUSH1", 0), ("REVERT", None),
            ])
        return prologue + list(items) + handlers


class ConstantBlinding(EVMObfuscationPass):
    """Replace PUSH constants with arithmetic that recomputes them at runtime."""

    name = "constant-blinding"

    def apply(self, items: List[AsmItem], rng: random.Random,
              intensity: float) -> List[AsmItem]:
        intensity = clamp_intensity(intensity)
        result: List[AsmItem] = []
        for item in items:
            mnemonic, operand = item
            is_small_push = (mnemonic.startswith("PUSH") and mnemonic != "PUSHLABEL"
                             and isinstance(operand, int) and 0 <= operand < (1 << 32))
            if is_small_push and rng.random() < intensity:
                key = rng.randrange(1, 1 << 16)
                result.extend([
                    ("PUSH4", operand ^ key),
                    ("PUSH2", key),
                    ("XOR", None),
                ])
            else:
                result.append(item)
        return result


#: The default pass stack applied by the E2-E4 experiments, in order.
DEFAULT_EVM_PASSES: Tuple[EVMObfuscationPass, ...] = (
    InstructionSubstitution(),
    ConstantBlinding(),
    DeadCodeInjection(),
    OpaquePredicateInsertion(),
    ControlFlowFlattening(),
    JunkSelectorInsertion(),
)
