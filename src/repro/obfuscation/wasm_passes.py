"""WASM obfuscation passes (wasm-mutate-style binary diversification).

The passes rewrite function bodies of a parsed :class:`WasmModule` with
semantics-preserving transformations and never touch the host-shim functions
required by the templates.  As with the EVM passes, every inserted sequence
is stack-neutral.
"""

from __future__ import annotations

import copy
import random
from typing import List, Tuple

from repro.obfuscation.base import WasmObfuscationPass, clamp_intensity
from repro.wasm.module import WasmInstructionEntry, WasmModule, instr
from repro.wasm.opcodes import BLOCKTYPE_VOID


def _clone_module(module: WasmModule) -> WasmModule:
    return copy.deepcopy(module)


def _body_insertion_points(body: List[WasmInstructionEntry]) -> List[int]:
    """Positions where a self-contained snippet may be inserted.

    Inserting directly after a ``return``/``unreachable``/``br`` is allowed
    (dead code); inserting before an ``else``/``end`` is also fine because the
    snippets leave the value stack unchanged.
    """
    return list(range(len(body) + 1))


class WasmNopInjection(WasmObfuscationPass):
    """Insert ``nop`` instructions at random points of every function body."""

    name = "wasm-nop-injection"

    def __init__(self, rate: float = 0.30) -> None:
        self.rate = rate

    def apply(self, module: WasmModule, rng: random.Random,
              intensity: float) -> WasmModule:
        intensity = clamp_intensity(intensity)
        result = _clone_module(module)
        for function in result.functions:
            count = int(len(function.body) * self.rate * intensity)
            for _ in range(count):
                position = rng.choice(_body_insertion_points(function.body))
                function.body.insert(position, instr("nop"))
        return result


class WasmIdentityArithmetic(WasmObfuscationPass):
    """Insert arithmetic no-op pairs (push a constant, combine, drop)."""

    name = "wasm-identity-arithmetic"

    def __init__(self, rate: float = 0.25) -> None:
        self.rate = rate

    def _snippet(self, rng: random.Random) -> List[WasmInstructionEntry]:
        choice = rng.randrange(3)
        if choice == 0:
            return [instr("i64.const", rng.randrange(1 << 16)),
                    instr("i64.const", rng.randrange(1 << 16)),
                    instr("i64.xor"), instr("drop")]
        if choice == 1:
            return [instr("i32.const", rng.randrange(1 << 16)),
                    instr("i32.const", 1), instr("i32.mul"), instr("drop")]
        return [instr("i64.const", 0), instr("i64.const", 0),
                instr("i64.add"), instr("drop")]

    def apply(self, module: WasmModule, rng: random.Random,
              intensity: float) -> WasmModule:
        intensity = clamp_intensity(intensity)
        result = _clone_module(module)
        for function in result.functions:
            count = int(len(function.body) * self.rate * intensity)
            for _ in range(count):
                position = rng.choice(_body_insertion_points(function.body))
                function.body[position:position] = self._snippet(rng)
        return result


class WasmOpaqueBranch(WasmObfuscationPass):
    """Insert never-taken conditional branches wrapped in their own block."""

    name = "wasm-opaque-branch"

    def __init__(self, rate: float = 0.08) -> None:
        self.rate = rate

    def apply(self, module: WasmModule, rng: random.Random,
              intensity: float) -> WasmModule:
        intensity = clamp_intensity(intensity)
        result = _clone_module(module)
        for function in result.functions:
            count = max(0, int(len(function.body) * self.rate * intensity))
            for _ in range(count):
                position = rng.choice(_body_insertion_points(function.body))
                snippet = [
                    instr("block", BLOCKTYPE_VOID),
                    instr("i32.const", 0),
                    instr("br_if", 0),
                    instr("i64.const", rng.randrange(1 << 16)),
                    instr("drop"),
                    instr("end"),
                ]
                function.body[position:position] = snippet
        return result


class WasmBlockWrapping(WasmObfuscationPass):
    """Wrap random instruction runs in redundant ``block``/``end`` pairs.

    Branch labels inside the wrapped run would shift by one, so only runs
    containing no branch instructions are wrapped (semantics preserved).
    """

    name = "wasm-block-wrapping"

    _BRANCHING = {"br", "br_if", "if", "else", "end", "block", "loop", "return",
                  "unreachable"}

    def __init__(self, rate: float = 0.06) -> None:
        self.rate = rate

    def apply(self, module: WasmModule, rng: random.Random,
              intensity: float) -> WasmModule:
        intensity = clamp_intensity(intensity)
        result = _clone_module(module)
        for function in result.functions:
            count = max(0, int(len(function.body) * self.rate * intensity))
            for _ in range(count):
                if len(function.body) < 3:
                    break
                start = rng.randrange(0, len(function.body) - 1)
                end = min(len(function.body), start + rng.randint(1, 4))
                run = function.body[start:end]
                if any(entry.name in self._BRANCHING for entry in run):
                    continue
                function.body[start:end] = ([instr("block", BLOCKTYPE_VOID)]
                                            + run + [instr("end")])
        return result


class WasmConstantBlinding(WasmObfuscationPass):
    """Replace i64 constants with xor-blinded pairs recomputed at runtime."""

    name = "wasm-constant-blinding"

    def apply(self, module: WasmModule, rng: random.Random,
              intensity: float) -> WasmModule:
        intensity = clamp_intensity(intensity)
        result = _clone_module(module)
        for function in result.functions:
            new_body: List[WasmInstructionEntry] = []
            for entry in function.body:
                if (entry.name == "i64.const" and entry.operands
                        and 0 <= entry.operands[0] < (1 << 32)
                        and rng.random() < intensity):
                    key = rng.randrange(1, 1 << 16)
                    new_body.extend([
                        instr("i64.const", entry.operands[0] ^ key),
                        instr("i64.const", key),
                        instr("i64.xor"),
                    ])
                else:
                    new_body.append(entry)
            function.body = new_body
        return result


#: Default WASM pass stack used by the cross-platform robustness experiments.
DEFAULT_WASM_PASSES: Tuple[WasmObfuscationPass, ...] = (
    WasmConstantBlinding(),
    WasmIdentityArithmetic(),
    WasmNopInjection(),
    WasmOpaqueBranch(),
    WasmBlockWrapping(),
)
