"""Common types for the obfuscation engines."""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import List

from repro.evm.assembler import AsmItem
from repro.wasm.module import WasmModule


class ObfuscationError(RuntimeError):
    """Raised when a pass cannot be applied to the given program."""


@dataclass
class ObfuscationReport:
    """Statistics about one obfuscation run (useful for tests and reports).

    Attributes:
        passes_applied: names of the passes that ran, in order.
        instructions_before: instruction count before obfuscation.
        instructions_after: instruction count after obfuscation.
        intensity: the intensity knob the run used.
    """

    passes_applied: List[str] = field(default_factory=list)
    instructions_before: int = 0
    instructions_after: int = 0
    intensity: float = 0.0

    @property
    def growth_factor(self) -> float:
        """Code-size growth (after / before); 1.0 when nothing changed."""
        if self.instructions_before == 0:
            return 1.0
        return self.instructions_after / self.instructions_before


class EVMObfuscationPass(abc.ABC):
    """An EVM pass transforming a lifted assembly-item program."""

    name: str = "evm-pass"

    @abc.abstractmethod
    def apply(self, items: List[AsmItem], rng: random.Random,
              intensity: float) -> List[AsmItem]:
        """Return a transformed copy of ``items`` (never mutate the input)."""


class WasmObfuscationPass(abc.ABC):
    """A WASM pass transforming a parsed module in place-free style."""

    name: str = "wasm-pass"

    @abc.abstractmethod
    def apply(self, module: WasmModule, rng: random.Random,
              intensity: float) -> WasmModule:
        """Return a transformed module (the input must not be mutated)."""


def clamp_intensity(intensity: float) -> float:
    """Clamp the intensity knob into [0, 1]."""
    return max(0.0, min(1.0, float(intensity)))
