"""Lift EVM bytecode back into relocatable assembly items.

Obfuscation passes insert code, which shifts byte offsets; to keep the
program's jumps valid the bytecode is first *lifted* into the assembler's
item representation with symbolic labels:

* every ``JUMPDEST`` becomes a ``LABEL`` pseudo-item, and
* every ``PUSH`` whose immediate equals the offset of some ``JUMPDEST``
  becomes a ``PUSHLABEL`` referencing that label.

Re-assembling the transformed item list recomputes all jump targets.  The
heuristic in the second bullet can in principle misfire on a data constant
that collides with a jump-destination offset; for the synthetic corpus
(and for solc output, where jump targets are pushed right before use) the
collision is harmless because the lifted program still evaluates to the
same destination offset.
"""

from __future__ import annotations

from typing import List, Set

from repro.evm.assembler import AsmItem
from repro.evm.disassembler import disassemble


def _label_for_offset(offset: int) -> str:
    return f"jd_{offset:x}"


def lift_bytecode_to_items(bytecode: bytes) -> List[AsmItem]:
    """Lift ``bytecode`` into relocatable assembler items (see module docs)."""
    instructions = disassemble(bytecode)
    jumpdest_offsets: Set[int] = {
        ins.offset for ins in instructions if ins.name == "JUMPDEST"}

    items: List[AsmItem] = []
    for ins in instructions:
        if ins.name == "JUMPDEST":
            items.append(("LABEL", _label_for_offset(ins.offset)))
        elif ins.name.startswith("PUSH") and ins.operand is not None \
                and ins.operand in jumpdest_offsets:
            items.append(("PUSHLABEL", _label_for_offset(ins.operand)))
        elif ins.name == "UNKNOWN":
            # keep undefined bytes as INVALID markers so sizes stay comparable
            items.append(("INVALID", None))
        else:
            operand = ins.operand if ins.opcode is not None and ins.opcode.immediate_size else None
            items.append((ins.name, operand))
    return items
