"""Composable obfuscation pipelines for both platforms."""

from __future__ import annotations

import random
from typing import Optional, Sequence, Tuple

from repro.evm.assembler import assemble
from repro.evm.disassembler import disassemble
from repro.obfuscation.base import (
    EVMObfuscationPass,
    ObfuscationReport,
    WasmObfuscationPass,
    clamp_intensity,
)
from repro.obfuscation.evm_lift import lift_bytecode_to_items
from repro.obfuscation.evm_passes import DEFAULT_EVM_PASSES
from repro.obfuscation.wasm_passes import DEFAULT_WASM_PASSES
from repro.wasm.encoder import encode_module
from repro.wasm.parser import parse_module


class EVMObfuscator:
    """Applies a stack of EVM passes to runtime bytecode.

    The obfuscator lifts the bytecode into relocatable assembly items, applies
    every pass in order with the configured intensity, and re-assembles,
    recomputing all jump targets.
    """

    def __init__(self, passes: Optional[Sequence[EVMObfuscationPass]] = None,
                 intensity: float = 0.5, seed: Optional[int] = None) -> None:
        self.passes: Tuple[EVMObfuscationPass, ...] = tuple(passes or DEFAULT_EVM_PASSES)
        self.intensity = clamp_intensity(intensity)
        self.seed = seed

    def obfuscate(self, bytecode: bytes,
                  report: Optional[ObfuscationReport] = None) -> bytes:
        """Return an obfuscated version of ``bytecode``."""
        if self.intensity == 0.0 or not self.passes:
            return bytes(bytecode)
        rng = random.Random(self.seed)
        items = lift_bytecode_to_items(bytes(bytecode))
        before = len(items)
        for obfuscation_pass in self.passes:
            items = obfuscation_pass.apply(items, rng, self.intensity)
            if report is not None:
                report.passes_applied.append(obfuscation_pass.name)
        result = assemble(items)
        if report is not None:
            report.instructions_before = before
            report.instructions_after = len(disassemble(result))
            report.intensity = self.intensity
        return result


class WasmObfuscator:
    """Applies a stack of WASM passes to a binary module."""

    def __init__(self, passes: Optional[Sequence[WasmObfuscationPass]] = None,
                 intensity: float = 0.5, seed: Optional[int] = None) -> None:
        self.passes: Tuple[WasmObfuscationPass, ...] = tuple(passes or DEFAULT_WASM_PASSES)
        self.intensity = clamp_intensity(intensity)
        self.seed = seed

    def obfuscate(self, binary: bytes,
                  report: Optional[ObfuscationReport] = None) -> bytes:
        """Return an obfuscated version of the binary module."""
        if self.intensity == 0.0 or not self.passes:
            return bytes(binary)
        rng = random.Random(self.seed)
        module = parse_module(bytes(binary))
        before = module.num_instructions
        for obfuscation_pass in self.passes:
            module = obfuscation_pass.apply(module, rng, self.intensity)
            if report is not None:
                report.passes_applied.append(obfuscation_pass.name)
        if report is not None:
            report.instructions_before = before
            report.instructions_after = module.num_instructions
            report.intensity = self.intensity
        return encode_module(module)


def obfuscate_sample(code: bytes, platform: str, intensity: float,
                     seed: Optional[int] = None) -> bytes:
    """Obfuscate ``code`` for the given ``platform`` ("evm" or "wasm")."""
    if platform == "evm":
        return EVMObfuscator(intensity=intensity, seed=seed).obfuscate(code)
    if platform == "wasm":
        return WasmObfuscator(intensity=intensity, seed=seed).obfuscate(code)
    raise ValueError(f"unknown platform {platform!r}")
