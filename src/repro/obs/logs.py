"""Structured JSON logging that stamps trace IDs onto stack warnings.

The scan stack reports operational conditions through ``warnings.warn``
(skipped files, degraded shards, missing alert sinks, ...).  With
``--log-json`` those warnings -- plus anything routed through the
stdlib ``logging`` module -- are re-emitted as one JSON object per line
on stderr, carrying the active trace/span IDs so a log line can be
joined against the trace JSONL it happened inside.
"""

from __future__ import annotations

import json
import logging
import sys
import threading
import time
import warnings
from typing import Dict, Optional, TextIO

from repro.obs.trace import carrier

__all__ = [
    "JsonLogHandler",
    "disable_json_logs",
    "enable_json_logs",
    "json_log",
    "json_logs_enabled",
]

_lock = threading.Lock()
_previous_showwarning = None
_handler: Optional["JsonLogHandler"] = None
_stream: TextIO = sys.stderr


def _base_record(level: str, message: str) -> Dict[str, object]:
    record: Dict[str, object] = {
        "ts": time.time(),
        "level": level,
        "message": message,
    }
    context = carrier()
    if context is not None:
        record["trace_id"] = context["trace_id"]
        record["span_id"] = context["span_id"]
    record["thread"] = threading.current_thread().name
    return record


def _write(record: Dict[str, object]) -> None:
    line = json.dumps(record, sort_keys=True, default=str)
    with _lock:
        try:
            _stream.write(line + "\n")
            _stream.flush()
        except (OSError, ValueError):  # closed/broken stderr must not crash
            pass


def json_log(level: str, message: str, **fields) -> None:
    """Emit one structured log line (no-op formatting, always JSON)."""
    record = _base_record(level, message)
    record.update(fields)
    _write(record)


class JsonLogHandler(logging.Handler):
    """``logging`` handler that renders records as trace-stamped JSON."""

    def emit(self, record: logging.LogRecord) -> None:
        try:
            payload = _base_record(
                record.levelname.lower(), record.getMessage()
            )
            payload["logger"] = record.name
            if record.exc_info and record.exc_info[0] is not None:
                payload["error"] = record.exc_info[0].__name__
            _write(payload)
        except Exception:  # logging must never raise into the app
            self.handleError(record)


def _json_showwarning(message, category, filename, lineno, file=None, line=None):
    record = _base_record("warning", str(message))
    record["category"] = category.__name__
    record["source"] = f"{filename}:{lineno}"
    _write(record)


def enable_json_logs(stream: Optional[TextIO] = None) -> None:
    """Route warnings + stdlib logging to JSON lines (idempotent)."""
    global _previous_showwarning, _handler, _stream
    if stream is not None:
        _stream = stream
    if _previous_showwarning is None:
        _previous_showwarning = warnings.showwarning
        warnings.showwarning = _json_showwarning
    if _handler is None:
        _handler = JsonLogHandler()
        logging.getLogger().addHandler(_handler)


def disable_json_logs() -> None:
    """Undo :func:`enable_json_logs` (for tests)."""
    global _previous_showwarning, _handler, _stream
    if _previous_showwarning is not None:
        warnings.showwarning = _previous_showwarning
        _previous_showwarning = None
    if _handler is not None:
        logging.getLogger().removeHandler(_handler)
        _handler = None
    _stream = sys.stderr


def json_logs_enabled() -> bool:
    """Whether JSON logging is currently installed."""
    return _previous_showwarning is not None
