"""Lightweight span tracing for the scan stack.

The tracer follows the same arming contract as
:func:`repro.resilience.faults.fault_point`: one module-global slot
(``_ACTIVE``).  When no tracer is armed, every instrumentation site --
``trace(...)`` / ``trace_from(...)`` / ``carrier()`` -- reduces to a single
global read plus a shared no-op context manager, so tracing can stay
compiled into the hot paths (lowering, cache lookup, cascade tier 0,
coalescer wait, GNN inference, registry writes, rules actions, ingest
enqueue/drain) at effectively zero cost in production.

Design rules that keep span accounting sane:

* ``trace(site)`` records **only inside an existing trace**.  A site hit
  on a thread with no active span context is a no-op unless the caller
  passes ``root=True`` -- so helper threads (lowering executors, shard
  workers, drain threads) can never mint orphan root traces by accident.
  Roots are started explicitly at operation entry points: a server
  request, an offline batch scan, an ingest enqueue.
* Crossing a thread, process or queue boundary is explicit: capture
  ``carrier()`` on the producing side, continue with
  ``trace_from(carrier, site)`` on the consuming side.  Such spans are
  linked ``"follows"`` and are exempt from the same-thread time-nesting
  invariant (clocks may differ across processes); same-thread children
  are linked ``"child"`` and must nest inside their parent.

Span records are plain JSON-able dicts so they cross the shard process
boundary inside the existing stats payloads and serialize to JSONL
unchanged::

    {"trace_id", "span_id", "parent_id", "site", "link",
     "start", "dur_ms", "pid", "thread", "attrs"}
"""

from __future__ import annotations

import collections
import contextlib
import itertools
import json
import os
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional

__all__ = [
    "JsonlTraceWriter",
    "Tracer",
    "active_tracer",
    "arm",
    "armed",
    "carrier",
    "disarm",
    "emit_span",
    "load_trace_file",
    "trace",
    "trace_from",
    "tracing",
    "verify_traces",
]

#: The armed tracer, or None.  Reading this module global is the entire
#: disarmed cost of every instrumentation site.
_ACTIVE: Optional["Tracer"] = None


class _NoopSpan:
    """Shared do-nothing span handed out by every disarmed site."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class _Span:
    """A live span; records itself on ``__exit__``."""

    __slots__ = (
        "_tracer",
        "site",
        "trace_id",
        "span_id",
        "parent_id",
        "link",
        "attrs",
        "_start_wall",
        "_start_perf",
    )

    def __init__(self, tracer, site, trace_id, span_id, parent_id, link, attrs):
        self._tracer = tracer
        self.site = site
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.link = link
        self.attrs = attrs

    def set(self, **attrs) -> "_Span":
        """Attach attributes after the span has started."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        self._tracer._stack().append((self.trace_id, self.span_id))
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur_ms = (time.perf_counter() - self._start_perf) * 1000.0
        stack = self._tracer._stack()
        key = (self.trace_id, self.span_id)
        if stack and stack[-1] == key:
            stack.pop()
        else:  # defensive: out-of-order exit must not corrupt the stack
            with contextlib.suppress(ValueError):
                stack.remove(key)
        record = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "site": self.site,
            "link": self.link,
            "start": self._start_wall,
            "dur_ms": dur_ms,
            "pid": self._tracer.pid,
            "thread": threading.current_thread().name,
            "attrs": self.attrs,
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        self._tracer.record(record)
        return False


class Tracer:
    """Collects span records into a bounded buffer and an optional sink.

    Args:
        sink: Optional callable invoked with every finished span record
            (e.g. a :class:`JsonlTraceWriter`).  Records are buffered in
            memory regardless, up to ``capacity``.
        capacity: Bound on the in-memory record buffer; the oldest
            records are dropped beyond it (``dropped`` counts them).
    """

    def __init__(
        self,
        sink: Optional[Callable[[Dict[str, object]], None]] = None,
        capacity: int = 65536,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._sink = sink
        self._capacity = capacity
        self._records: collections.deque = collections.deque()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._counter = itertools.count(1)
        self.pid = os.getpid()
        self.dropped = 0
        self.recorded = 0

    # ------------------------------------------------------------------ #
    # context plumbing (per-thread)

    def _stack(self) -> List[tuple]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> str:
        return f"{self.pid:x}-{next(self._counter):x}"

    def carrier(self) -> Optional[Dict[str, str]]:
        """The current span context as a JSON-able propagation carrier."""
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        trace_id, span_id = stack[-1]
        return {"trace_id": trace_id, "span_id": span_id}

    def _start(self, site, root, parent_carrier, attrs):
        if parent_carrier is not None:
            trace_id = parent_carrier.get("trace_id")
            parent_id = parent_carrier.get("span_id")
            if trace_id is None:
                return _NOOP
            link = "follows"
        else:
            stack = self._stack()
            if stack:
                trace_id, parent_id = stack[-1]
                link = "child"
            elif root:
                trace_id = self._next_id()
                parent_id = None
                link = "root"
            else:
                # no active trace on this thread: recording here would
                # mint an orphan trace (e.g. an executor thread touching
                # the cache) -- stay silent instead
                return _NOOP
        return _Span(self, site, trace_id, self._next_id(), parent_id, link, attrs)

    # ------------------------------------------------------------------ #
    # record collection

    def record(self, record: Dict[str, object]) -> None:
        """Append one finished span record (buffer + sink)."""
        with self._lock:
            self.recorded += 1
            self._records.append(record)
            if len(self._records) > self._capacity:
                self._records.popleft()
                self.dropped += 1
        if self._sink is not None:
            self._sink(record)

    def emit(self, record: Dict[str, object]) -> None:
        """Absorb a span record produced elsewhere (e.g. a shard worker)."""
        self.record(record)

    def emit_many(self, records: Iterable[Dict[str, object]]) -> int:
        count = 0
        for record in records:
            self.record(record)
            count += 1
        return count

    def drain(self) -> List[Dict[str, object]]:
        """Return and clear the buffered records."""
        with self._lock:
            records = list(self._records)
            self._records.clear()
        return records

    def snapshot(self) -> List[Dict[str, object]]:
        """The buffered records without clearing them."""
        with self._lock:
            return list(self._records)


# ---------------------------------------------------------------------- #
# module-level instrumentation API (the hot-path entry points)


def trace(site: str, root: bool = False, **attrs):
    """Span context manager for ``site``; no-op when disarmed.

    With a tracer armed, records a ``"child"`` span when the calling
    thread already has an active span, a ``"root"`` span when it does
    not *and* ``root=True``, and nothing otherwise (see module rules).
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NOOP
    return tracer._start(site, root, None, attrs)


def trace_from(carrier: Optional[Dict[str, str]], site: str, **attrs):
    """Continue a trace across a thread/process/queue boundary.

    ``carrier`` is the dict captured by :func:`carrier` on the producing
    side (or None, which -- like a disarmed tracer -- makes this a
    no-op).  The span is linked ``"follows"``.
    """
    tracer = _ACTIVE
    if tracer is None or carrier is None:
        return _NOOP
    return tracer._start(site, False, carrier, attrs)


def carrier() -> Optional[Dict[str, str]]:
    """The calling thread's span context for propagation, or None."""
    tracer = _ACTIVE
    if tracer is None:
        return None
    return tracer.carrier()


def emit_span(
    parent: Optional[Dict[str, str]],
    site: str,
    start: float,
    dur_ms: float,
    **attrs,
) -> None:
    """Record a pre-measured ``"follows"`` span under ``parent``.

    For sites where per-item context managers are impractical (e.g. one
    ingest drain batch covering many queued contracts): measure once,
    then emit one follows-span per carried item.
    """
    tracer = _ACTIVE
    if tracer is None or parent is None:
        return
    trace_id = parent.get("trace_id")
    if trace_id is None:
        return
    tracer.record(
        {
            "trace_id": trace_id,
            "span_id": tracer._next_id(),
            "parent_id": parent.get("span_id"),
            "site": site,
            "link": "follows",
            "start": start,
            "dur_ms": dur_ms,
            "pid": tracer.pid,
            "thread": threading.current_thread().name,
            "attrs": attrs,
        }
    )


def arm(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide active tracer."""
    global _ACTIVE
    _ACTIVE = tracer
    return tracer


def disarm() -> Optional[Tracer]:
    """Remove the active tracer (returning it, so callers can drain)."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


def armed() -> bool:
    """Whether a tracer is currently armed."""
    return _ACTIVE is not None


def active_tracer() -> Optional[Tracer]:
    """The armed tracer, or None."""
    return _ACTIVE


@contextlib.contextmanager
def tracing(
    sink: Optional[Callable[[Dict[str, object]], None]] = None,
    capacity: int = 65536,
):
    """Arm a fresh :class:`Tracer` for the duration of a ``with`` block.

    Restores whatever was armed before on exit, so nested/temporary
    tracing (tests, experiments) cannot leak arming state.
    """
    global _ACTIVE
    previous = _ACTIVE
    tracer = Tracer(sink=sink, capacity=capacity)
    arm(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE = previous


# ---------------------------------------------------------------------- #
# JSONL export / import


class JsonlTraceWriter:
    """Thread-safe JSONL span sink (one record per line).

    Usable directly as a :class:`Tracer` sink and as a context manager::

        with JsonlTraceWriter(path) as writer, tracing(sink=writer):
            ...
    """

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self.written = 0

    def __call__(self, record: Dict[str, object]) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")
            self.written += 1

    def flush(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def load_trace_file(path) -> List[Dict[str, object]]:
    """Parse a trace JSONL file into span records (blank lines skipped).

    Raises:
        ValueError: On a line that is not a valid JSON object.
    """
    records: List[Dict[str, object]] = []
    with open(os.fspath(path), "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{number}: invalid JSON ({error})")
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{number}: span record is not an object")
            records.append(record)
    return records


# ---------------------------------------------------------------------- #
# span-accounting invariants (E16 + CI smoke)

#: Wall-clock slack allowed when checking that a child span's interval
#: sits inside its parent's.  Child spans run on the same process clock,
#: so this only absorbs float rounding and timer granularity.
_NESTING_SLACK_S = 0.005


def verify_traces(records: Iterable[Dict[str, object]]) -> Dict[str, int]:
    """Check span-accounting invariants over a set of records.

    Returns counters (all zero on a healthy trace set):

    * ``traces`` / ``spans``: totals seen.
    * ``accounting_mismatches``: traces whose number of ``"root"`` spans
      is not exactly one.
    * ``orphan_spans``: non-root spans whose parent span is absent from
      their trace.
    * ``nesting_mismatches``: ``"child"`` spans whose time interval does
      not sit inside their parent's (``"follows"`` spans are exempt --
      they may cross process clocks).
    """
    by_trace: Dict[str, List[Dict[str, object]]] = {}
    spans = 0
    for record in records:
        trace_id = record.get("trace_id")
        if trace_id is None:
            continue
        spans += 1
        by_trace.setdefault(str(trace_id), []).append(record)

    accounting = 0
    orphans = 0
    nesting = 0
    for trace_records in by_trace.values():
        by_span = {
            str(record.get("span_id")): record for record in trace_records
        }
        roots = [r for r in trace_records if r.get("link") == "root"]
        if len(roots) != 1:
            accounting += 1
        for record in trace_records:
            if record.get("link") == "root":
                continue
            parent = by_span.get(str(record.get("parent_id")))
            if parent is None:
                orphans += 1
                continue
            if record.get("link") != "child":
                continue
            child_start = float(record["start"])
            child_end = child_start + float(record["dur_ms"]) / 1000.0
            parent_start = float(parent["start"])
            parent_end = parent_start + float(parent["dur_ms"]) / 1000.0
            if (
                child_start < parent_start - _NESTING_SLACK_S
                or child_end > parent_end + _NESTING_SLACK_S
            ):
                nesting += 1
    return {
        "traces": len(by_trace),
        "spans": spans,
        "accounting_mismatches": accounting,
        "orphan_spans": orphans,
        "nesting_mismatches": nesting,
    }
