"""Observability layer: span tracing, Prometheus exposition, JSON logs.

Three pieces, all stdlib-only and all built to cost nothing when off:

* :mod:`repro.obs.trace` -- the span tracer compiled into the scan
  stack's hot paths.  Disarmed (the default), every site is one
  module-global ``None`` check; armed, spans carry per-request trace IDs
  across threads, shard worker processes and the ingest queue, and can
  stream to a JSONL file (``--trace-file``).
* :mod:`repro.obs.prometheus` -- text exposition of the server metrics
  snapshot (``GET /v1/metrics?format=prometheus``) plus the exposition
  validator shared by tests and CI.
* :mod:`repro.obs.logs` -- structured JSON logging (``--log-json``) that
  stamps trace IDs onto the warnings the stack already emits.

:mod:`repro.obs.summary` analyses exported trace files
(``scamdetect trace summarize``): per-site percentiles, slowest traces,
critical path.
"""

from repro.obs.logs import (
    disable_json_logs,
    enable_json_logs,
    json_log,
    json_logs_enabled,
)
from repro.obs.prometheus import render_prometheus, validate_exposition
from repro.obs.summary import critical_path, format_summary, summarize_traces
from repro.obs.trace import (
    JsonlTraceWriter,
    Tracer,
    active_tracer,
    arm,
    armed,
    carrier,
    disarm,
    emit_span,
    load_trace_file,
    trace,
    trace_from,
    tracing,
    verify_traces,
)

__all__ = [
    "JsonlTraceWriter",
    "Tracer",
    "active_tracer",
    "arm",
    "armed",
    "carrier",
    "critical_path",
    "disable_json_logs",
    "disarm",
    "emit_span",
    "enable_json_logs",
    "format_summary",
    "json_log",
    "json_logs_enabled",
    "load_trace_file",
    "render_prometheus",
    "summarize_traces",
    "trace",
    "trace_from",
    "tracing",
    "validate_exposition",
    "verify_traces",
]
