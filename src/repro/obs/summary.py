"""Offline analysis of trace JSONL files: ``scamdetect trace summarize``.

Answers the questions a trace file exists for: where does a scan spend
its time (per-site p50/p99), which traces were slowest, and what the
critical path through a slow trace looks like.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

__all__ = ["critical_path", "format_summary", "summarize_traces"]


def _percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile over a non-empty sorted copy (0.0 empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[index]


def summarize_traces(
    records: Iterable[Dict[str, object]], top: int = 5
) -> Dict[str, object]:
    """Aggregate span records into a summary dict.

    Returns::

        {"traces": N, "spans": M,
         "sites": {site: {count, total_ms, p50_ms, p99_ms, max_ms}},
         "slowest": [{trace_id, site, dur_ms, spans}, ...],   # top roots
         "critical_path": [{site, dur_ms}, ...]}              # slowest trace
    """
    records = list(records)
    by_site: Dict[str, List[float]] = {}
    by_trace: Dict[str, List[Dict[str, object]]] = {}
    for record in records:
        site = str(record.get("site", "?"))
        by_site.setdefault(site, []).append(float(record.get("dur_ms", 0.0)))
        trace_id = record.get("trace_id")
        if trace_id is not None:
            by_trace.setdefault(str(trace_id), []).append(record)

    sites = {
        site: {
            "count": len(durations),
            "total_ms": sum(durations),
            "p50_ms": _percentile(durations, 0.50),
            "p99_ms": _percentile(durations, 0.99),
            "max_ms": max(durations),
        }
        for site, durations in sorted(by_site.items())
    }

    roots = []
    for trace_id, trace_records in by_trace.items():
        root = next(
            (r for r in trace_records if r.get("link") == "root"), None
        )
        if root is None:
            continue
        roots.append(
            {
                "trace_id": trace_id,
                "site": str(root.get("site", "?")),
                "dur_ms": float(root.get("dur_ms", 0.0)),
                "spans": len(trace_records),
            }
        )
    roots.sort(key=lambda entry: entry["dur_ms"], reverse=True)
    slowest = roots[: max(0, top)]

    path: List[Dict[str, object]] = []
    if slowest:
        path = critical_path(by_trace[slowest[0]["trace_id"]])

    return {
        "traces": len(by_trace),
        "spans": len(records),
        "sites": sites,
        "slowest": slowest,
        "critical_path": path,
    }


def critical_path(
    trace_records: List[Dict[str, object]],
) -> List[Dict[str, object]]:
    """The root-to-leaf chain following the longest child at each level."""
    root = next(
        (r for r in trace_records if r.get("link") == "root"), None
    )
    if root is None:
        return []
    children: Dict[str, List[Dict[str, object]]] = {}
    for record in trace_records:
        parent_id = record.get("parent_id")
        if parent_id is not None:
            children.setdefault(str(parent_id), []).append(record)
    path = []
    current: Optional[Dict[str, object]] = root
    seen = set()
    while current is not None:
        span_id = str(current.get("span_id"))
        if span_id in seen:  # defensive: malformed cycles must terminate
            break
        seen.add(span_id)
        path.append(
            {
                "site": str(current.get("site", "?")),
                "dur_ms": float(current.get("dur_ms", 0.0)),
                "link": str(current.get("link", "?")),
            }
        )
        branches = children.get(span_id)
        current = (
            max(branches, key=lambda r: float(r.get("dur_ms", 0.0)))
            if branches
            else None
        )
    return path


def format_summary(summary: Dict[str, object]) -> str:
    """Human-readable rendering of :func:`summarize_traces` output."""
    lines = [
        f"traces: {summary['traces']}  spans: {summary['spans']}",
        "",
        f"{'site':<22} {'count':>7} {'p50 ms':>9} {'p99 ms':>9} "
        f"{'max ms':>9} {'total ms':>10}",
    ]
    for site, stats in summary["sites"].items():
        lines.append(
            f"{site:<22} {stats['count']:>7} {stats['p50_ms']:>9.2f} "
            f"{stats['p99_ms']:>9.2f} {stats['max_ms']:>9.2f} "
            f"{stats['total_ms']:>10.1f}"
        )
    if summary["slowest"]:
        lines.append("")
        lines.append("slowest traces:")
        for entry in summary["slowest"]:
            lines.append(
                f"  {entry['trace_id']}  {entry['site']:<18} "
                f"{entry['dur_ms']:>9.2f} ms  ({entry['spans']} spans)"
            )
    if summary["critical_path"]:
        lines.append("")
        lines.append("critical path (slowest trace):")
        for depth, step in enumerate(summary["critical_path"]):
            lines.append(
                f"  {'  ' * depth}{step['site']} "
                f"({step['dur_ms']:.2f} ms, {step['link']})"
            )
    return "\n".join(lines)
