"""Prometheus text exposition for the scan server's metrics snapshot.

:func:`render_prometheus` turns the JSON payload of ``GET /v1/metrics``
(see :meth:`repro.service.server.ServerMetrics.snapshot`) into the
Prometheus text format (version 0.0.4), with one stable family per
counter the stack already tracks -- requests, latency percentiles,
cache, inference batches, registry, cascade, shards and ingest.  Scrape
it with ``GET /v1/metrics?format=prometheus``.

:func:`validate_exposition` is the shared syntax checker used by the
unit tests and the CI ``obs-smoke`` job: metric-name/label grammar, one
``TYPE``/``HELP`` per family, no duplicate families, no duplicate
samples.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

__all__ = ["render_prometheus", "validate_exposition"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_TYPES = frozenset(("counter", "gauge", "histogram", "summary", "untyped"))


class _Exposition:
    """Accumulates families + samples and renders the text format."""

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self._lines: List[str] = []
        self._declared: set = set()

    def family(self, name: str, kind: str, help_text: str) -> None:
        full = f"{self.prefix}_{name}"
        if full in self._declared:
            raise ValueError(f"duplicate metric family {full}")
        self._declared.add(full)
        self._lines.append(f"# HELP {full} {help_text}")
        self._lines.append(f"# TYPE {full} {kind}")

    def sample(
        self,
        name: str,
        value: object,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        full = f"{self.prefix}_{name}"
        rendered = ""
        if labels:
            pairs = ",".join(
                f'{key}="{_escape(str(val))}"'
                for key, val in sorted(labels.items())
            )
            rendered = "{" + pairs + "}"
        self._lines.append(f"{full}{rendered} {_number(value)}")

    def metric(
        self,
        name: str,
        kind: str,
        help_text: str,
        value: object,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """One-sample family: declare and emit in one call."""
        self.family(name, kind, help_text)
        self.sample(name, value, labels)

    def text(self) -> str:
        return "\n".join(self._lines) + "\n"


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _number(value: object) -> str:
    number = float(value)
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _cache_families(
    out: _Exposition, cache: Dict[str, object], prefix: str, labels=None
) -> None:
    out.family(
        f"{prefix}_lookups_total",
        "counter",
        "Graph-cache lookups by result.",
    )
    out.sample(
        f"{prefix}_lookups_total",
        cache.get("hits", 0),
        {**(labels or {}), "result": "hit"},
    )
    out.sample(
        f"{prefix}_lookups_total",
        cache.get("misses", 0),
        {**(labels or {}), "result": "miss"},
    )
    out.metric(
        f"{prefix}_hit_rate",
        "gauge",
        "Graph-cache hit rate over all lookups.",
        cache.get("hit_rate", 0.0),
        labels,
    )
    for key, help_text in (
        ("evictions", "In-memory LRU evictions."),
        ("disk_hits", "Lookups answered from the on-disk tier."),
        ("disk_writes", "Entries published to the on-disk tier."),
        ("stale_purges", "Disk entries purged by fingerprint mismatch."),
        ("disk_corrupt", "Unreadable disk entries treated as misses."),
    ):
        out.metric(
            f"{prefix}_{key}_total", "counter", help_text,
            cache.get(key, 0), labels,
        )


def render_prometheus(
    snapshot: Dict[str, object],
    tracing_armed: bool = False,
    fault_injection_armed: bool = False,
    prefix: str = "scamdetect",
) -> str:
    """Render a ``/v1/metrics`` snapshot as Prometheus exposition text."""
    out = _Exposition(prefix)
    out.metric(
        "uptime_seconds",
        "gauge",
        "Seconds since the scan server started.",
        snapshot.get("uptime_seconds", 0.0),
    )
    out.metric(
        "tracing_armed",
        "gauge",
        "1 when a span tracer is armed in this process.",
        int(bool(tracing_armed)),
    )
    out.metric(
        "fault_injection_armed",
        "gauge",
        "1 when a deterministic fault plan is armed in this process.",
        int(bool(fault_injection_armed)),
    )

    requests = dict(snapshot.get("requests", {}))
    total = requests.pop("total", 0)
    deprecated = requests.pop("deprecated", 0)
    out.family(
        "requests_total", "counter", "HTTP requests served, by endpoint."
    )
    for endpoint, count in sorted(requests.items()):
        out.sample("requests_total", count, {"endpoint": endpoint})
    if not requests and total:
        out.sample("requests_total", total, {"endpoint": "unknown"})
    out.metric(
        "requests_deprecated_total",
        "counter",
        "Requests served on deprecated unversioned paths.",
        deprecated,
    )
    out.metric(
        "errors_total",
        "counter",
        "Requests answered with an error envelope.",
        snapshot.get("errors", 0),
    )

    latency = snapshot.get("latency", {})
    out.family(
        "request_latency_ms",
        "gauge",
        "Request latency percentiles over the recent window, by endpoint.",
    )
    for endpoint, window in sorted(latency.items()):
        for quantile, key in (
            ("0.5", "p50_ms"),
            ("0.9", "p90_ms"),
            ("0.99", "p99_ms"),
        ):
            out.sample(
                "request_latency_ms",
                window.get(key, 0.0),
                {"endpoint": endpoint, "quantile": quantile},
            )
    out.family(
        "request_latency_window",
        "gauge",
        "Samples in the bounded latency window, by endpoint.",
    )
    for endpoint, window in sorted(latency.items()):
        out.sample(
            "request_latency_window",
            window.get("count", 0),
            {"endpoint": endpoint},
        )

    scans = snapshot.get("scans", {})
    out.metric(
        "contracts_scanned_total",
        "counter",
        "Contracts scored since start.",
        scans.get("contracts", 0),
    )
    out.metric(
        "contracts_malicious_total",
        "counter",
        "Contracts flagged malicious since start.",
        scans.get("malicious", 0),
    )
    out.metric(
        "scan_rate_contracts_per_second",
        "gauge",
        "Lifetime scan throughput (contracts / uptime).",
        scans.get("contracts_per_second", 0.0),
    )
    _cache_families(out, scans.get("cache", {}), "cache")

    batches = scans.get("batches", {})
    out.metric(
        "inference_batches_total",
        "counter",
        "Batched GNN inference calls.",
        batches.get("count", 0),
    )
    out.metric(
        "inference_batches_coalesced_total",
        "counter",
        "Inference calls that scored more than one graph.",
        batches.get("coalesced", 0),
    )
    out.family(
        "inference_batch_size_total",
        "counter",
        "Inference calls by exact batch size.",
    )
    histogram = batches.get("histogram", {})
    for size in sorted(histogram, key=lambda value: int(value)):
        out.sample(
            "inference_batch_size_total",
            histogram[size],
            {"size": str(size)},
        )

    registry = scans.get("registry", {})
    out.family(
        "registry_lookups_total",
        "counter",
        "Persistent-registry verdict lookups by result.",
    )
    out.sample(
        "registry_lookups_total", registry.get("hits", 0), {"result": "hit"}
    )
    out.sample(
        "registry_lookups_total",
        registry.get("misses", 0),
        {"result": "miss"},
    )
    if "busy_retries" in registry:
        out.metric(
            "registry_busy_retries_total",
            "counter",
            "SQLite WAL busy retries on registry writes.",
            registry["busy_retries"],
        )

    cascade = scans.get("cascade")
    if cascade is not None:
        out.family(
            "cascade_contracts_total",
            "counter",
            "Tier-0 cascade outcomes.",
        )
        out.sample(
            "cascade_contracts_total",
            cascade.get("short_circuits", 0),
            {"outcome": "short_circuit"},
        )
        out.sample(
            "cascade_contracts_total",
            cascade.get("escalations", 0),
            {"outcome": "escalated"},
        )
        out.metric(
            "cascade_disagreements_total",
            "counter",
            "Escalated contracts the GNN flagged against the pre-filter.",
            cascade.get("disagreements", 0),
        )

    shards = snapshot.get("shards")
    if shards:
        shard_items: List[Tuple[str, Dict[str, object]]] = sorted(
            shards.items()
        )
        out.family(
            "shard_contracts_total",
            "counter",
            "Contracts scored per shard worker.",
        )
        for shard, entry in shard_items:
            out.sample(
                "shard_contracts_total",
                entry.get("contracts", 0),
                {"shard": shard},
            )
        out.family(
            "shard_inference_calls_total",
            "counter",
            "Coalesced inference calls dispatched per shard.",
        )
        for shard, entry in shard_items:
            out.sample(
                "shard_inference_calls_total",
                entry.get("inference", {}).get("calls", 0),
                {"shard": shard},
            )
        out.family(
            "shard_inference_mean_latency_ms",
            "gauge",
            "Mean per-call shard inference latency.",
        )
        for shard, entry in shard_items:
            out.sample(
                "shard_inference_mean_latency_ms",
                entry.get("inference", {}).get("mean_latency_ms", 0.0),
                {"shard": shard},
            )
        out.family(
            "shard_restarts_total",
            "counter",
            "Worker respawns per shard.",
        )
        for shard, entry in shard_items:
            out.sample(
                "shard_restarts_total",
                entry.get("restarts", 0),
                {"shard": shard},
            )
        out.family(
            "shard_quarantined",
            "gauge",
            "1 when the shard is quarantined (hash-space rebalanced).",
        )
        for shard, entry in shard_items:
            out.sample(
                "shard_quarantined",
                int(bool(entry.get("quarantined", False))),
                {"shard": shard},
            )

    ingest = snapshot.get("ingest")
    if ingest:
        queue = ingest.get("queue", {})
        for key, kind, help_text in (
            ("depth", "gauge", "Items pending in the ingest queue."),
            ("capacity", "gauge", "Hard bound of the ingest queue."),
            (
                "peak_depth",
                "gauge",
                "Deepest the ingest queue has been since start.",
            ),
        ):
            out.metric(
                f"ingest_queue_{key}", kind, help_text, queue.get(key, 0)
            )
        for key, help_text in (
            ("enqueued", "Items admitted to the ingest queue."),
            ("deduped", "Enqueues coalesced into a pending duplicate."),
            ("dropped", "Enqueues rejected by the capacity bound."),
            ("drained", "Items handed to the drain workers."),
        ):
            out.metric(
                f"ingest_queue_{key}_total",
                "counter",
                help_text,
                queue.get(key, 0),
            )
        stats = ingest.get("stats", {})
        for key, help_text in (
            ("scanned", "Contracts scanned by the ingest drain."),
            ("malicious", "Ingest-drained contracts flagged malicious."),
            ("registry_hits", "Drained contracts answered from the registry."),
            ("inference_calls", "Model calls made by the ingest drain."),
            ("rules_matched", "Triage rule matches on drained verdicts."),
            ("alerts", "Triage alerts emitted by the ingest drain."),
            (
                "backpressure_stalls",
                "Watcher event-pump stalls on a full queue.",
            ),
        ):
            out.metric(
                f"ingest_{key}_total", "counter", help_text, stats.get(key, 0)
            )
    return out.text()


# ---------------------------------------------------------------------- #
# exposition-format validation (tests + CI smoke)

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)


def validate_exposition(text: str) -> List[str]:
    """Syntax-check Prometheus exposition text; returns error strings.

    An empty return value means the text is valid: every sample parses,
    every sample's family carries exactly one ``TYPE`` (declared before
    its samples) and at most one ``HELP``, no family or ``(name,
    labels)`` sample appears twice.
    """
    errors: List[str] = []
    typed: Dict[str, str] = {}
    helped: set = set()
    seen_samples: set = set()
    sampled_families: set = set()
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                # other comments are legal exposition; ignore them
                continue
            keyword, name = parts[1], parts[2]
            if not _NAME_RE.match(name):
                errors.append(f"line {number}: invalid metric name {name!r}")
                continue
            if keyword == "TYPE":
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in _TYPES:
                    errors.append(
                        f"line {number}: invalid type {kind!r} for {name}"
                    )
                if name in typed:
                    errors.append(
                        f"line {number}: duplicate TYPE for family {name}"
                    )
                if name in sampled_families:
                    errors.append(
                        f"line {number}: TYPE for {name} after its samples"
                    )
                typed[name] = kind
            else:
                if name in helped:
                    errors.append(
                        f"line {number}: duplicate HELP for family {name}"
                    )
                helped.add(name)
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"line {number}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        sampled_families.add(name)
        if name not in typed:
            errors.append(
                f"line {number}: sample for {name} has no TYPE declaration"
            )
        labels = match.group("labels")
        label_key = ()
        if labels is not None:
            pairs = []
            for chunk in _split_labels(labels):
                pair = _LABEL_PAIR_RE.match(chunk)
                if pair is None:
                    errors.append(
                        f"line {number}: invalid label pair {chunk!r}"
                    )
                    continue
                if not _LABEL_RE.match(pair.group("key")):
                    errors.append(
                        f"line {number}: invalid label name "
                        f"{pair.group('key')!r}"
                    )
                pairs.append((pair.group("key"), pair.group("value")))
            if len({key for key, _ in pairs}) != len(pairs):
                errors.append(f"line {number}: repeated label name")
            label_key = tuple(sorted(pairs))
        value = match.group("value")
        if value not in ("NaN", "+Inf", "-Inf"):
            try:
                float(value)
            except ValueError:
                errors.append(
                    f"line {number}: sample value {value!r} is not a number"
                )
        sample_key = (name, label_key)
        if sample_key in seen_samples:
            errors.append(
                f"line {number}: duplicate sample {name}{{{labels or ''}}}"
            )
        seen_samples.add(sample_key)
    return errors


def _split_labels(labels: str) -> List[str]:
    """Split a label body on commas outside quoted values."""
    chunks: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for char in labels:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            chunks.append("".join(current).strip())
            current = []
            continue
        current.append(char)
    if current:
        chunks.append("".join(current).strip())
    return [chunk for chunk in chunks if chunk]
