"""E5 ("Table 3"): platform-agnostic detection on EVM and WASM corpora.

Regenerates the paper's Phase-2 goal: the same pipeline configuration,
consuming the shared IR, achieves comparable detection quality on both the
EVM and the WASM corpus.
"""

from benchmarks.conftest import record_result, run_once
from repro.evaluation import E5Config, run_e5_cross_platform


def test_bench_e5_cross_platform(benchmark):
    config = E5Config(num_samples_per_platform=200, epochs=30, seed=0)
    result = run_once(benchmark, run_e5_cross_platform, config)
    record_result(result)

    assert {row["platform"] for row in result.rows} == {"evm", "wasm"}
    # paper shape: both platforms detected well by the same pipeline, with a
    # gap of a few points rather than tens of points
    assert result.summary["evm_gnn_accuracy"] >= 0.85
    assert result.summary["wasm_gnn_accuracy"] >= 0.85
    assert result.summary["cross_platform_gap"] <= 0.12
