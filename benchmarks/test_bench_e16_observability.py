"""E16: observability -- disarmed tracing is free, armed costs <= 10%.

The tracing layer's acceptance experiment: the same 240-contract
per-contract scan loop runs with tracing disarmed (the production
default -- every instrumentation site is one module-global ``None``
check) and with a tracer armed.  The contracts: (1) the disarmed
best/worst repeat ratio stays at jitter level, so instrumenting the hot
paths did not slow the seed stack (E8/E12's seed-gated throughputs hold
independently); (2) armed tracing costs at most 10% wall clock; (3) span
accounting is exact -- every scan yields exactly one trace, no orphan
spans, every same-thread child nests inside its parent; (4) armed and
disarmed passes produce identical verdicts.

The overhead ratios are machine-independent, so ``check_regression.py``
ceilings them even under ``--ratios-only``; the mismatch counters are
zero-rise gated.
"""

from benchmarks.conftest import record_json, record_result, run_once
from repro.evaluation import E16Config, run_e16_observability


def test_bench_e16_observability(benchmark):
    config = E16Config(num_samples=240, epochs=6, seed=0)
    result = run_once(benchmark, run_e16_observability, config)
    record_result(result)
    record_json("E16", result)

    # fidelity: tracing must never change a verdict
    assert result.summary["verdict_mismatches"] == 0
    # span accounting: one trace per scan, no orphans, children nest
    assert result.summary["span_accounting_mismatches"] == 0
    assert result.summary["span_nesting_mismatches"] == 0
    assert result.summary["traces"] == config.num_samples
    # acceptance: armed tracing within the 10% overhead cap
    ratio = result.summary["armed_overhead_ratio"]
    assert ratio <= config.armed_overhead_cap, (
        f"armed tracing cost {ratio:.3f}x the disarmed stack "
        f"(contract: <= {config.armed_overhead_cap:g}x)")
