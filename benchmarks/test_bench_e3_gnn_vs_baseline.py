"""E3 ("Table 2"): the five GNNs vs opcode baselines under unseen obfuscation.

Regenerates the paper's Phase-1 hypothesis: graph neural networks over
control-flow graphs retain more accuracy than opcode-sequence models when the
attacker uses obfuscation passes the detector never saw at training time.
"""

from benchmarks.conftest import record_result, run_once
from repro.evaluation import E3Config, run_e3_gnn_vs_baseline


def test_bench_e3_gnn_vs_baseline(benchmark):
    config = E3Config(num_samples=240, epochs=30, test_intensity=0.6, seed=0)
    result = run_once(benchmark, run_e3_gnn_vs_baseline, config)
    record_result(result)

    assert len(result.rows) == 2 + 5  # two baselines + five GNN architectures
    # paper shape: every model is strong on clean code ...
    assert all(row["clean_accuracy"] >= 0.85 for row in result.rows)
    # ... and the GNN family loses no more accuracy than the opcode-histogram
    # baseline (the representation PhishingHook relies on).  The opcode-bigram
    # baseline turned out to be unexpectedly robust to our structural passes;
    # that deviation from the paper's hypothesised shape is reported as-is in
    # EXPERIMENTS.md rather than asserted away.
    rows = {row["model"]: row for row in result.rows}
    histogram_row = rows["histogram+random-forest"]
    assert result.summary["mean_gnn_drop"] <= histogram_row["accuracy_drop"] + 0.05
    assert (result.summary["best_gnn_obfuscated"]
            >= histogram_row["obfuscated_accuracy"] - 0.02)
