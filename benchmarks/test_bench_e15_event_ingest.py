"""E15: event-driven ingest -- steady-state cycles must beat poll walks.

The ingest-tier acceptance experiment: the same 240-contract corpus is
ingested by the polling ``WatchDaemon`` and by the event-driven
``EventIngestService`` (inotify -> bounded priority queue -> the batch
scan stack).  The contracts: (1) the two registries end up
**byte-identical** (same sample ids, same verdict dicts field by field);
(2) a steady-state cycle over the unchanged corpus is at least 5x cheaper
event-driven than polled -- the daemon stats every file, the service pays
one empty ``select()``; (3) idling performs zero inference, and (4) a
contract dropped into the watched tree reaches a recorded verdict without
waiting out a poll interval.

The speedup gate is machine-independent (skipping a walk is free
anywhere), so like E11 it is unconditional -- but the whole benchmark
needs inotify, hence the skip on hosts without it.
"""

import pytest

from benchmarks.conftest import record_json, record_result, run_once
from repro.evaluation import E15Config, run_e15_event_ingest
from repro.ingest import InotifyWatcher

pytestmark = pytest.mark.skipif(
    not InotifyWatcher.available(),
    reason="E15 needs inotify (the poll fallback would measure a walk "
           "against a walk)")


def test_bench_e15_event_ingest(benchmark):
    config = E15Config(num_samples=240, steady_cycles=20, epochs=6, seed=0)
    result = run_once(benchmark, run_e15_event_ingest, config)
    record_result(result)
    record_json("E15", result)

    # parity: event-path registry rows == poll-path registry rows
    assert result.summary["verdict_mismatches"] == 0
    assert result.summary["registry_rows"] == config.num_samples
    # idling over an unchanged corpus is inference-free on the event path
    assert result.summary["steady_inference_calls"] == 0
    # acceptance: the raw steady-state ratio clears the 5x floor (the
    # gated summary value is capped at config.speedup_cap for baseline
    # stability, so assert on the observed ratio here)
    observed = result.summary["steady_state_ratio_observed"]
    assert observed >= 5.0, (
        f"event-driven steady cycle only {observed:.1f}x cheaper than a "
        f"poll walk (contract: >= 5x)")
    assert result.summary["steady_state_speedup"] <= config.speedup_cap
    # the late-dropped contract reached a verdict at event latency: well
    # under the classic daemon's 2s default poll interval
    assert result.summary["event_react_ms"] < 2000.0
