"""E6 ("Table 4"): accuracy inflation without minimal-proxy/clone deduplication.

Regenerates the paper's dataset-curation argument: leaving duplicate
deployments (factory clones, ERC-1167 proxies) in the corpus leaks training
contracts into the test split and inflates measured accuracy.
"""

from benchmarks.conftest import record_result, run_once
from repro.evaluation import E6Config, run_e6_dedup_ablation


def test_bench_e6_dedup_ablation(benchmark):
    config = E6Config(num_samples=240, proxy_duplicate_fraction=0.5, seed=0)
    result = run_once(benchmark, run_e6_dedup_ablation, config)
    record_result(result)

    raw_row, dedup_row = result.rows
    assert raw_row["corpus_size"] > dedup_row["corpus_size"]
    assert result.summary["duplicates_removed"] >= config.num_samples * 0.3
    # paper shape: the raw (duplicate-ridden) corpus reports higher accuracy
    assert raw_row["accuracy"] >= dedup_row["accuracy"]
