"""E8: batch scanning service throughput -- cold vs cached corpus re-scan.

The service-layer acceptance experiment: re-scanning a corpus through the
content-addressed graph cache must be at least 5x faster than the cold scan
that filled it, and every batch verdict must be bit-identical to the
single-sample ``ScamDetector.scan`` path.
"""

from benchmarks.conftest import record_json, record_result, run_once
from repro.evaluation import E8Config, run_e8_scan_throughput


def test_bench_e8_scan_throughput(benchmark):
    config = E8Config(num_samples=120, epochs=6, seed=0)
    result = run_once(benchmark, run_e8_scan_throughput, config)
    record_result(result)
    record_json("E8", result)

    sequential_row, cold_row, warm_row = result.rows
    assert warm_row["cache_hit_rate"] == 1.0
    # the cache must never change a verdict
    assert result.summary["verdict_mismatches"] == 0
    # acceptance: cached re-scan is >= 5x faster than the cold scan
    assert result.summary["warm_speedup"] >= 5.0
    # and the batch path must not be slower than the plain scan() loop
    assert cold_row["seconds"] <= sequential_row["seconds"] * 1.5
