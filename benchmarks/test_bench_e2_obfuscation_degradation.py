"""E2 ("Figure 1"): opcode-pattern classifiers degrade under obfuscation.

Regenerates the paper's motivating claim: static opcode-sequence detectors
trained on clean bytecode lose most of their accuracy once the attacker
applies BOSC/BiAn-style obfuscation.
"""

from benchmarks.conftest import record_result, run_once
from repro.evaluation import E2Config, run_e2_obfuscation_degradation
from repro.evaluation.reporting import format_series


def test_bench_e2_obfuscation_degradation(benchmark):
    config = E2Config(num_samples=240, intensities=(0.0, 0.25, 0.5, 0.75, 1.0), seed=0)
    result = run_once(benchmark, run_e2_obfuscation_degradation, config)
    record_result(result)
    print(format_series(
        {"histogram+rf": [row["histogram_rf_accuracy"] for row in result.rows],
         "2gram+rf": [row["ngram_rf_accuracy"] for row in result.rows]},
        x_values=[row["intensity"] for row in result.rows],
        title="Figure 1: accuracy vs obfuscation intensity (clean-trained baselines)"))

    clean = result.rows[0]
    worst = result.rows[-1]
    # paper shape: strong on clean code, collapsing towards chance at high intensity
    assert clean["histogram_rf_accuracy"] >= 0.9
    assert worst["histogram_rf_accuracy"] <= 0.70
    assert result.summary["histogram_drop"] >= 0.25
    # degradation is monotone in the large: max accuracy at intensity 0
    accuracies = [row["histogram_rf_accuracy"] for row in result.rows]
    assert max(accuracies) == accuracies[0]
