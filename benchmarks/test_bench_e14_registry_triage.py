"""E14: retro-triage at fleet scale -- compiled parity + WAL contention.

The registry-v2 acceptance experiment: a synthetic 100k-row registry is
retro-triaged by five rules that between them exercise every compilable
matcher (verdict, score bounds, platform, indicators, path glob, model
identity, scanned-at window, sha256 prefix).  The compiled-SQL sweep must
produce the exact (rule, sha256) sequence of the row-at-a-time Python
oracle -- byte-identical action order, not just the same match set -- at
>= 10x the oracle's throughput, because the indexes discard non-matching
rows in C instead of dragging each one through ``VerdictRow``.

The second phase hammers one WAL registry from four concurrent writer
processes with ``busy_timeout`` forced to zero: every collision must be
absorbed by the application-level busy-retry policy, the summed
``scan_count`` must equal the writes issued (zero lost updates), and the
retry counters must have actually advanced -- an accidentally-disarmed
retry path fails loudly here.
"""

from benchmarks.conftest import record_json, record_result, run_once
from repro.evaluation import E14Config, run_e14_registry_triage


def test_bench_e14_registry_triage(benchmark):
    config = E14Config(num_rows=100_000, batch_size=2000, writers=4,
                       writes_per_writer=150, contention_rows=25, seed=0)
    result = run_once(benchmark, run_e14_registry_triage, config)
    record_result(result)
    record_json("E14", result)

    # parity: the compiled sweep and the Python oracle agree on every
    # (rule, sha256) outcome, in the same deterministic order
    assert result.summary["triage_disagreements"] == 0
    assert result.summary["triage_matches"] > 0

    # the compiled path actually earns its keep at the 100k-row scale
    assert result.summary["triage_speedup"] >= 10.0

    # fleet contention: zero lost updates, and the busy-retry write path
    # was genuinely exercised (collisions occurred and were absorbed)
    assert result.summary["lost_update_mismatches"] == 0
    assert result.summary["registry_busy_retries"] >= 1
    assert result.summary["writers"] >= 4
