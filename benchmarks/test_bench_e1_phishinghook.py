"""E1 ("Table 1"): the PhishingHook 16-model zoo, 5-fold cross-validation.

Regenerates the paper's headline prior-work claim: an average detection
accuracy around 90% across 16 bytecode-classification models on the EVM
phishing corpus.
"""

from benchmarks.conftest import record_result, run_once
from repro.evaluation import E1Config, run_e1_phishinghook_zoo


def test_bench_e1_phishinghook_zoo(benchmark):
    result = run_once(benchmark, run_e1_phishinghook_zoo, E1Config(
        num_samples=280, folds=5, label_noise=0.05, seed=0))
    record_result(result)

    assert len(result.rows) == 16
    # paper shape: zoo average in the ~85-95% band, best models above 90%
    assert 0.80 <= result.summary["average_accuracy"] <= 1.0
    assert result.summary["best_accuracy"] >= 0.90
