"""E4 ("Figure 2"): robustness curve over obfuscation intensity.

Regenerates the accuracy-vs-intensity figure comparing the best GNN against
the opcode-histogram and opcode-bigram baselines under unseen structural
obfuscation.
"""


from benchmarks.conftest import record_result, run_once
from repro.evaluation import E4Config, run_e4_robustness_curve
from repro.evaluation.reporting import format_series


def test_bench_e4_robustness_curve(benchmark):
    config = E4Config(num_samples=240, epochs=30, architecture="gin",
                      intensities=(0.0, 0.25, 0.5, 0.75, 1.0), seed=0)
    result = run_once(benchmark, run_e4_robustness_curve, config)
    record_result(result)
    print(format_series(
        {f"scamdetect-{config.architecture}": [row["gnn_accuracy"] for row in result.rows],
         "histogram+rf": [row["histogram_rf_accuracy"] for row in result.rows],
         "2gram+rf": [row["ngram_rf_accuracy"] for row in result.rows]},
        x_values=[row["intensity"] for row in result.rows],
        title="Figure 2: accuracy vs unseen-obfuscation intensity"))

    # paper shape: parity on clean code, GNN curve sits above the histogram
    # baseline on average across the intensity sweep
    assert result.rows[0]["gnn_accuracy"] >= 0.85
    assert (result.summary["gnn_mean_accuracy"]
            >= result.summary["histogram_mean_accuracy"] - 0.02)
    # at the highest intensity the histogram baseline has lost most of its edge
    worst = result.rows[-1]
    assert worst["histogram_rf_accuracy"] <= worst["gnn_accuracy"] + 0.15
