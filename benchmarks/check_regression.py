#!/usr/bin/env python
"""Benchmark-regression gate: compare fresh BENCH_*.json against baselines.

The benchmark suite writes machine-readable ``benchmarks/BENCH_<ID>.json``
files on every run (see ``benchmarks/conftest.py``).  Known-good copies are
committed under ``benchmarks/baselines/``.  This script compares the two and
fails (exit 1) when:

* a **throughput metric** (summary or per-row keys ending in ``_per_second``
  or containing ``speedup``) drops by more than ``--tolerance`` (default
  20%) relative to the baseline, or
* an **overhead ratio** (keys containing ``overhead_ratio``, E16's
  armed-tracing cost) rises more than ``--tolerance`` above the baseline
  (gated even under ``--ratios-only`` -- ratios are machine-independent), or
* a **fidelity counter** (keys containing ``mismatch``, or summary
  ``*_inference_calls`` counters for contractually inference-free paths)
  rises at all -- verdict/prediction parity is exact, so any increase is a
  correctness regression, never noise.

Rows are matched to baseline rows by their ``mode`` field.  A fresh file
missing for a committed baseline is itself a failure (the benchmark stopped
producing output).  Metrics present only on one side are reported but do not
fail the gate, so adding a new measurement does not require lock-step edits.

Usage::

    python benchmarks/check_regression.py                # after a bench run
    python benchmarks/check_regression.py --tolerance 0.5

CI runs this right after the benchmark step.  Throughput on shared CI
runners is noisy; raise ``--tolerance`` there rather than deleting the gate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, Iterator, List, Tuple

BENCH_DIR = pathlib.Path(__file__).parent
BASELINE_DIR = BENCH_DIR / "baselines"


def is_throughput_key(key: str) -> bool:
    """Higher-is-better metrics gated by the relative tolerance.

    ``*availability*`` (E13's answered-requests fraction under injected
    faults) rides the same floor gate: a fault class that starts dropping
    work shows up as an availability drop, not as noise.
    """
    return (key.endswith("_per_second") or "speedup" in key
            or "availability" in key)


def is_overhead_key(key: str) -> bool:
    """Lower-is-better ratio metrics gated by a relative ceiling.

    ``*overhead_ratio*`` (E16's armed/disarmed tracing cost) is a
    machine-independent ratio around 1.0: it is gated even under
    ``--ratios-only``, failing when the fresh value exceeds
    ``baseline * (1 + tolerance)``.
    """
    return "overhead_ratio" in key


def is_fidelity_key(key: str) -> bool:
    """Lower-is-better exact counters gated at zero increase.

    ``*mismatch*`` counts broken verdict parity; ``*disagreement*`` counts
    cascade short-circuits the GNN would have overruled (E12's equal-recall
    contract); ``*inference_calls`` in a summary counts model invocations on
    paths contractually required to be inference-free (E11's warm watch
    polls, E12's short-circuited contracts) -- all are exact, so any rise is
    a correctness regression, never noise.
    """
    return ("mismatch" in key or "disagreement" in key
            or key.endswith("inference_calls"))


def _metric_pairs(baseline: Dict, fresh: Dict
                  ) -> Iterator[Tuple[str, float, float]]:
    """Yield (label, baseline value, fresh value) for comparable metrics."""
    base_summary = baseline.get("summary") or {}
    fresh_summary = fresh.get("summary") or {}
    for key in sorted(base_summary):
        if key in fresh_summary and isinstance(base_summary[key], (int, float)):
            yield f"summary.{key}", float(base_summary[key]), \
                float(fresh_summary[key])
    fresh_rows = {row.get("mode"): row for row in fresh.get("rows", [])
                  if isinstance(row, dict)}
    for row in baseline.get("rows", []):
        if not isinstance(row, dict) or row.get("mode") not in fresh_rows:
            continue
        fresh_row = fresh_rows[row["mode"]]
        for key in sorted(row):
            if key in fresh_row and isinstance(row[key], (int, float)) \
                    and not isinstance(row[key], bool):
                yield f"rows[{row['mode']}].{key}", float(row[key]), \
                    float(fresh_row[key])


def compare_file(baseline_path: pathlib.Path, fresh_path: pathlib.Path,
                 tolerance: float,
                 ratios_only: bool = False) -> Tuple[List[str], List[str]]:
    """Compare one benchmark file pair; returns (report lines, failures).

    With ``ratios_only`` the absolute-rate metrics (``*_per_second``) are
    skipped and only machine-independent ratios (``*speedup*``) and the
    exact fidelity counters are gated -- the right mode for CI runners whose
    hardware differs from the machine that produced the baselines.
    """
    lines: List[str] = []
    failures: List[str] = []
    name = fresh_path.name
    if not fresh_path.exists():
        return [], [f"{name}: fresh benchmark output missing "
                    f"(did the benchmark run?)"]
    baseline = json.loads(baseline_path.read_text())
    fresh = json.loads(fresh_path.read_text())
    for label, base_value, fresh_value in _metric_pairs(baseline, fresh):
        key = label.rsplit(".", 1)[-1]
        if ratios_only and key.endswith("_per_second"):
            lines.append(f"  skip {label}: absolute rate "
                         f"(--ratios-only)")
            continue
        if is_throughput_key(key):
            floor = base_value * (1.0 - tolerance)
            ok = fresh_value >= floor
            lines.append(f"  {'ok  ' if ok else 'FAIL'} {label}: "
                         f"{fresh_value:.3f} vs baseline {base_value:.3f} "
                         f"(floor {floor:.3f})")
            if not ok:
                drop = (1.0 - fresh_value / base_value) * 100 \
                    if base_value else 0.0
                failures.append(
                    f"{name}: {label} dropped {drop:.1f}% "
                    f"({base_value:.3f} -> {fresh_value:.3f}, "
                    f"tolerance {tolerance:.0%})")
        elif is_overhead_key(key):
            ceiling = base_value * (1.0 + tolerance)
            ok = fresh_value <= ceiling
            lines.append(f"  {'ok  ' if ok else 'FAIL'} {label}: "
                         f"{fresh_value:.3f} vs baseline {base_value:.3f} "
                         f"(ceiling {ceiling:.3f})")
            if not ok:
                rise = (fresh_value / base_value - 1.0) * 100 \
                    if base_value else 0.0
                failures.append(
                    f"{name}: {label} rose {rise:.1f}% "
                    f"({base_value:.3f} -> {fresh_value:.3f}, "
                    f"tolerance {tolerance:.0%}) -- tracing overhead "
                    f"regressed")
        elif is_fidelity_key(key):
            ok = fresh_value <= base_value
            lines.append(f"  {'ok  ' if ok else 'FAIL'} {label}: "
                         f"{fresh_value:g} vs baseline {base_value:g} "
                         f"(must not rise)")
            if not ok:
                failures.append(
                    f"{name}: {label} rose from {base_value:g} to "
                    f"{fresh_value:g} -- parity broke, this is a "
                    f"correctness regression")
    return lines, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when benchmarks regress against the committed "
                    "baselines")
    parser.add_argument("--baseline-dir", type=pathlib.Path,
                        default=BASELINE_DIR,
                        help="directory of committed BENCH_*.json baselines")
    parser.add_argument("--fresh-dir", type=pathlib.Path, default=BENCH_DIR,
                        help="directory of freshly produced BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional throughput drop "
                             "(default 0.2 = 20%%)")
    parser.add_argument("--ratios-only", action="store_true",
                        help="gate only machine-independent metrics "
                             "(speedup ratios, mismatch counters); use on "
                             "CI hardware that differs from the baseline "
                             "machine")
    args = parser.parse_args(argv)

    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")
    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"check_regression: no baselines under {args.baseline_dir}",
              file=sys.stderr)
        return 1

    all_failures: List[str] = []
    for baseline_path in baselines:
        fresh_path = args.fresh_dir / baseline_path.name
        lines, failures = compare_file(baseline_path, fresh_path,
                                       args.tolerance,
                                       ratios_only=args.ratios_only)
        print(f"{baseline_path.name}:")
        for line in lines:
            print(line)
        all_failures.extend(failures)

    if all_failures:
        print(f"\nbench-regression gate FAILED "
              f"({len(all_failures)} violation"
              f"{'s' if len(all_failures) != 1 else ''}):", file=sys.stderr)
        for failure in all_failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nbench-regression gate passed "
          f"({len(baselines)} baseline file"
          f"{'s' if len(baselines) != 1 else ''}, "
          f"tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
