"""E10: multi-process sharded scan engine -- throughput scaling + parity.

The sharding acceptance experiment: on hardware with at least 4 usable
cores a cold scan across 4 shard processes must be at least 2x faster than
the 1-shard pool, and every sharded verdict -- cold, warm, any shard count
-- must be bit-identical to the single-process oracle.

The speedup side of the claim is physically hardware-bound: CPU-bound
lowering cannot parallelise on a 1-core container no matter what the
software does.  The floor therefore scales with the cores this process may
actually use (affinity-aware); the parity side is asserted unconditionally,
because correctness never depends on the machine.
"""

from benchmarks.conftest import record_json, record_result, run_once
from repro.evaluation import E10Config, run_e10_sharded_throughput
from repro.evaluation.experiments import available_cores


def speedup_floor(cores: int, shards: int) -> float:
    """The cold-scan speedup the pool must deliver on this hardware.

    >= shards cores: the full 2x acceptance floor.  2-3 cores: some real
    parallelism must show up (1.2x).  1 core: parallel speedup is
    impossible, so only bound the sharding overhead -- the pool must stay
    within ~3x of the 1-shard runtime (IPC + partitioning cost).
    """
    if cores >= shards:
        return 2.0
    if cores >= 2:
        return 1.2
    return 1.0 / 3.0


def test_bench_e10_sharded_throughput(benchmark):
    config = E10Config(num_samples=240, epochs=6, shards=4, seed=0)
    result = run_once(benchmark, run_e10_sharded_throughput, config)
    record_result(result)
    record_json("E10", result)

    # parity is unconditional: sharding must never change a verdict
    assert result.summary["verdict_mismatches"] == 0
    # the warm re-scan ran on a *fresh* pool against the disk tier another
    # pool filled: every hit crossed a process boundary
    assert result.summary["warm_hit_rate"] == 1.0
    single_row, one_row, many_row, warm_row = result.rows
    assert warm_row["cache_hit_rate"] == 1.0
    # acceptance: cold sharded throughput scaling, floored by the hardware
    floor = speedup_floor(available_cores(), config.shards)
    assert result.summary["sharded_speedup"] >= floor, (
        f"sharded speedup {result.summary['sharded_speedup']:.2f} below "
        f"floor {floor:.2f} at {available_cores()} usable cores")
    # warm-vs-cold wall-clock is disk/page-cache dependent (small contracts
    # can re-lower faster than .npz reads on slow disks), so the warm
    # contract gated here is perfect sharing -- hit_rate 1.0 + parity --
    # with the measured ratio kept as telemetry in the summary
    assert result.summary["warm_vs_cold_ratio"] > 0.0
