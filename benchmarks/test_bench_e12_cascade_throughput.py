"""E12: two-stage cascade scoring -- faster at exactly equal recall.

The cascade acceptance experiment: a 240-contract, 75%-benign corpus is
cold-scanned twice by the same trained detector, once GNN-only and once
with the tier-0 calibrated n-gram pre-filter in front.  The cascade run
must be at least 3x faster, flag **exactly the same contracts** malicious
(zero label disagreements between the two verdict streams), and GNN-score
every escalated contract exactly once -- short-circuited contracts never
touch the model.

The speedup is a ratio of two scans on the same machine in the same
process, so it is gated unconditionally; the fidelity counters are exact
and must be zero everywhere.
"""

from benchmarks.conftest import record_json, record_result, run_once
from repro.evaluation import E12Config, run_e12_cascade_throughput


def test_bench_e12_cascade_throughput(benchmark):
    config = E12Config(num_samples=240, malicious_fraction=0.25, epochs=6,
                       seed=0)
    result = run_once(benchmark, run_e12_cascade_throughput, config)
    record_result(result)
    record_json("E12", result)

    # equal recall: the cascade changes when contracts are scored, never
    # what they are scored -- label parity is exact
    assert result.summary["cascade_disagreements"] == 0
    # the runtime near-miss counter (escalated malicious contracts whose
    # pre-filter score sat below the raw threshold) agrees: the margin did
    # its job and nothing malicious came close to short-circuiting
    assert result.summary["runtime_near_miss_disagreements"] == 0
    # every escalated contract GNN-scored exactly once, nothing else
    assert result.summary["excess_inference_calls"] == 0

    # the corpus actually exercises both tiers, and the short-circuit band
    # covers the benign majority the cascade exists for
    gnn_row, cascade_row = result.rows
    assert cascade_row["short_circuits"] + cascade_row["escalations"] == \
        config.num_samples
    assert cascade_row["short_circuits"] >= config.num_samples // 2
    assert cascade_row["malicious"] == gnn_row["malicious"]

    # acceptance: >= 3x cold throughput over GNN-only at equal recall
    assert result.summary["cascade_speedup"] >= 3.0, (
        f"cascade scan only {result.summary['cascade_speedup']:.2f}x faster "
        f"than GNN-only (contract: >= 3x at equal recall)")
