"""E13: chaos campaign -- zero wrong verdicts under every fault class.

The resilience acceptance experiment: the 240-contract corpus is scanned
under six deterministic fault classes (worker crashes, shard quarantine,
corrupted cache entries, SQLITE_BUSY registry writes, a dead webhook, a
slow/transiently-failing server) and every scenario's verdict stream is
compared field-by-field against a fault-free single-process oracle.

The gated contract: **zero** verdict mismatches, zero lost verdicts or
alerts, availability 1.0 everywhere (every request eventually answered,
including while a quarantined shard's hash-space is rebalanced onto its
healthy peers) -- and all of it must hold for *every* chaos seed.  CI
sweeps the seed weekly via ``SCAMDETECT_CHAOS_SEED`` so the determinism
knob can never ossify into one lucky schedule.
"""

import os

from benchmarks.conftest import record_json, record_result, run_once
from repro.evaluation import E13Config, run_e13_chaos_resilience


def _chaos_seed() -> int:
    raw = os.environ.get("SCAMDETECT_CHAOS_SEED", "0")
    try:
        return int(raw)
    except ValueError:
        raise RuntimeError(
            f"SCAMDETECT_CHAOS_SEED must be an integer, not {raw!r}"
        ) from None


def test_bench_e13_chaos_campaign(benchmark):
    config = E13Config(num_samples=240, epochs=6, seed=0,
                       chaos_seed=_chaos_seed())
    result = run_once(benchmark, run_e13_chaos_resilience, config)
    record_result(result)
    record_json("E13", result)

    # correctness under chaos: retries, requeues, rebalancing and cache
    # recovery may cost time but never change (or drop) a verdict
    assert result.summary["verdict_mismatches"] == 0
    assert result.summary["lost_verdict_mismatches"] == 0
    assert result.summary["lost_alert_mismatches"] == 0
    # the quarantine scenario really opened shard 0's circuit and finished
    # degraded instead of failing the batch
    assert result.summary["degraded_mode_mismatches"] == 0
    assert result.summary["quarantined_shards"] >= 1

    # availability: every fault class answered everything it was asked
    assert result.summary["min_availability"] == 1.0
    for row in result.rows:
        assert row["availability"] == 1.0, row

    # the campaign actually injected faults and the stack actually had to
    # recover -- an accidentally-disarmed injector must fail loudly here
    assert result.summary["faults_injected"] > 0
    assert result.summary["worker_restarts"] >= 1
    assert result.summary["webhook_dead_lettered"] >= 1
    assert result.summary["client_retries"] >= 1
