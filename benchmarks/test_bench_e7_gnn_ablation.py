"""E7 ("Figure 3"): ablation of the GNN design choices called out in DESIGN.md.

Sweeps convolution depth, readout and node-feature design of the ScamDetect
GNN and scores every variant on clean and unseen-obfuscation accuracy.
"""

from benchmarks.conftest import record_result, run_once
from repro.evaluation import E7Config, run_e7_gnn_ablation
from repro.evaluation.reporting import format_series


def test_bench_e7_gnn_ablation(benchmark):
    config = E7Config(num_samples=200, epochs=25, seed=0)
    result = run_once(benchmark, run_e7_gnn_ablation, config)
    record_result(result)
    print(format_series(
        {"clean": [row["clean_accuracy"] for row in result.rows],
         "obfuscated": [row["obfuscated_accuracy"] for row in result.rows]},
        x_values=list(range(len(result.rows))),
        title="Figure 3: ablation variants (x = variant index, see table order)"))

    variants = {row["variant"]: row for row in result.rows}
    # paper shape: multi-layer message passing beats a single layer on clean data
    assert (max(variants["depth=2"]["clean_accuracy"],
                variants["depth=3"]["clean_accuracy"])
            >= variants["depth=1"]["clean_accuracy"] - 0.02)
    # marker node features are the main carrier of obfuscation robustness
    marker_rows = [row for name, row in variants.items() if name.startswith("depth=")]
    best_marker = max(row["obfuscated_accuracy"] for row in marker_rows)
    assert best_marker >= variants["features=fraction-histogram"]["obfuscated_accuracy"] - 0.02
    assert all(row["clean_accuracy"] >= 0.75 for row in result.rows)
