"""E9: vectorized batched-graph engine vs the per-graph oracle.

The acceptance benchmark of the batched execution engine: at the trainer's
default mini-batch size (16 graphs) batched training must be at least 3x
faster than the per-graph loop it replaced, batched inference at least 3x
faster than per-graph ``predict_proba``, and the two inference paths must
agree on every prediction over the E5-style EVM + WASM corpora.

Throughput numbers are also written to ``benchmarks/BENCH_E9.json`` for CI
and tooling.
"""

from benchmarks.conftest import record_json, record_result, run_once
from repro.evaluation import E9Config, run_e9_gnn_throughput


def test_bench_e9_gnn_throughput(benchmark):
    # extra timing repeats de-noise the wall-clock ratios on busy CI runners
    config = E9Config(batch_size=16, seed=0, train_repeats=3,
                      inference_repeats=4)
    result = run_once(benchmark, run_e9_gnn_throughput, config)
    record_result(result)
    record_json("E9", result)

    # the batched engine must never change a verdict relative to the oracle
    assert result.summary["prediction_mismatches"] == 0
    # acceptance: >= 3x training throughput at batch_size=16
    assert result.summary["train_speedup"] >= 3.0
    # acceptance: >= 3x inference throughput over the E5 corpora
    assert result.summary["inference_speedup"] >= 3.0
    # probability noise stays at reduction-order level, far below thresholds
    assert result.summary["max_probability_delta"] < 1e-9
