"""Shared helpers for the benchmark harness.

Every benchmark runs one experiment exactly once (``rounds=1``), prints
the regenerated table/figure to stdout and splices it into
``benchmarks/results.txt`` so the paper-vs-measured comparison in
EXPERIMENTS.md can be refreshed from a single run.

``results.txt`` is spliced section-by-section rather than truncated at
session start: running a subset of the benchmarks (e.g. only E10-E16)
refreshes exactly those sections and leaves every other experiment's
record intact.  E1-E7 have no ``BENCH_*.json`` artifact, so the text
file is the sole persisted record of their measurements.
"""

from __future__ import annotations

import json
import pathlib
import re

import pytest  # noqa: F401  (kept for plugin discovery alongside fixtures)

RESULTS_FILE = pathlib.Path(__file__).parent / "results.txt"

_SECTION_HEADER = re.compile(r"(?m)^== (E\d+)\b")


def record_result(result) -> None:
    """Print one experiment result and splice it into ``results.txt``.

    The section whose ``== E<n>:`` header matches ``result.experiment_id``
    is replaced in place (preserving the file's section order); a new
    experiment is appended at the end.  Sections belonging to benchmarks
    that did not run in this session are left untouched.
    """
    text = result.format()
    print("\n" + text)
    _splice_section(str(result.experiment_id), text)


def _splice_section(experiment_id: str, text: str) -> None:
    existing = RESULTS_FILE.read_text() if RESULTS_FILE.exists() else ""
    block = text + "\n\n"
    starts = [m.start() for m in _SECTION_HEADER.finditer(existing)]
    pieces = [existing[: starts[0]]] if starts else [existing]
    replaced = False
    for index, start in enumerate(starts):
        end = starts[index + 1] if index + 1 < len(starts) else len(existing)
        section = existing[start:end]
        match = _SECTION_HEADER.match(section)
        if match is not None and match.group(1) == experiment_id:
            if not replaced:
                pieces.append(block)
                replaced = True
        else:
            pieces.append(section)
    if not replaced:
        pieces.append(block)
    RESULTS_FILE.write_text("".join(pieces))


def record_json(name: str, result) -> pathlib.Path:
    """Persist one experiment result as machine-readable JSON.

    Writes ``benchmarks/BENCH_<NAME>.json`` with the experiment's rows and
    summary so CI and downstream tooling can consume throughput numbers
    without scraping ``results.txt``.
    """
    path = pathlib.Path(__file__).parent / f"BENCH_{name.upper()}.json"
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "rows": result.rows,
        "summary": result.summary,
        "notes": result.notes,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
