"""Shared helpers for the benchmark harness.

Every benchmark runs one E1-E7 experiment exactly once (``rounds=1``), prints
the regenerated table/figure to stdout and appends it to
``benchmarks/results.txt`` so the paper-vs-measured comparison in
EXPERIMENTS.md can be refreshed from a single run.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_FILE = pathlib.Path(__file__).parent / "results.txt"


def record_result(result) -> None:
    """Print and persist one experiment result."""
    text = result.format()
    print("\n" + text)
    with RESULTS_FILE.open("a") as handle:
        handle.write(text + "\n\n")


def record_json(name: str, result) -> pathlib.Path:
    """Persist one experiment result as machine-readable JSON.

    Writes ``benchmarks/BENCH_<NAME>.json`` with the experiment's rows and
    summary so CI and downstream tooling can consume throughput numbers
    without scraping ``results.txt``.
    """
    path = pathlib.Path(__file__).parent / f"BENCH_{name.upper()}.json"
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "rows": result.rows,
        "summary": result.summary,
        "notes": result.notes,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture(scope="session", autouse=True)
def _reset_results_file():
    """Start every benchmark session with a fresh results file."""
    if RESULTS_FILE.exists():
        RESULTS_FILE.unlink()
    yield


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
