"""E11: continuous watch ingest -- warm re-polls must be inference-free.

The registry acceptance experiment: a cold watch ingest of a 240-contract
corpus pays full lowering + inference once; a warm re-poll of the unchanged
corpus must be at least 20x faster and perform **zero** GNN inference calls
(the stat short-circuit never even re-reads the files), and a
daemon-restart poll with every mtime bumped -- the stat index defeated, so
every file is re-read and re-hashed -- must answer everything from the
registry, also inference-free.  Every registry verdict is compared
byte-for-byte against a direct ``scan_directory`` oracle.

Unlike the E10 scaling floor this contract is not hardware-bound: skipping
work is free on any machine, so all gates here are unconditional.
"""

from benchmarks.conftest import record_json, record_result, run_once
from repro.evaluation import E11Config, run_e11_watch_ingest


def test_bench_e11_watch_ingest(benchmark):
    config = E11Config(num_samples=240, epochs=6, seed=0)
    result = run_once(benchmark, run_e11_watch_ingest, config)
    record_result(result)
    record_json("E11", result)

    # parity: registry verdicts == scan_directory verdicts, byte for byte
    assert result.summary["verdict_mismatches"] == 0
    assert result.summary["registry_rows"] == config.num_samples
    # the inference-free contract: warm and restart polls never touch the
    # model (zero batched inference calls, zero contracts scanned)
    assert result.summary["warm_inference_calls"] == 0
    assert result.summary["restart_inference_calls"] == 0
    cold_row, warm_row, restart_row = result.rows
    assert cold_row["scanned"] == config.num_samples
    assert warm_row["scanned"] == 0 and warm_row["registry_hits"] == 0
    # the restart poll re-hashed everything and answered from the registry
    assert restart_row["scanned"] == 0
    assert restart_row["registry_hits"] == config.num_samples
    # acceptance: a warm re-poll of an unchanged corpus is >= 20x faster
    # than the cold ingest
    assert result.summary["warm_speedup"] >= 20.0, (
        f"warm watch poll only {result.summary['warm_speedup']:.1f}x faster "
        f"than cold ingest (contract: >= 20x)")
