#!/usr/bin/env python
"""CI smoke test for retro-triage (run against real subprocesses).

Drives the registry-v2 triage loop the way an operator would:

1. generate a small corpus and seed a registry via ``scamdetect
   scan-batch --registry``,
2. ``scamdetect triage --dry-run --explain --json`` and assert the
   compiled plans are printed, matches are found, and *nothing* is
   written (no tags visible, exit code 0 even though an
   ``exit_nonzero`` rule matched),
3. apply the same rules file and assert the per-rule match counts are
   identical to the dry run, the tags are now visible through
   ``scamdetect query --tag``, and the ``exit_nonzero`` rule turns
   into exit code 2,
4. re-apply and assert idempotence (same matches, zero new tags),
5. run a webhook rule against a dead endpoint with
   ``--dead-letter-file`` and assert every failed delivery landed in
   the JSONL dead-letter sink as machine-readable lines.

Usage::

    python scripts/ci_triage_smoke.py --model-path /tmp/ci-model
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

RULES = """
[[rules]]
name = "ci-retro-hot"

[rules.match]
verdict = "malicious"

[rules.actions]
tag = ["ci-retro-hot"]
alert = true
exit_nonzero = true

[[rules]]
name = "ci-retro-clean"

[rules.match]
verdict = "benign"
max_score = 0.4

[rules.actions]
tag = ["ci-retro-clean"]
"""

# a dead endpoint: port 9 (discard) is unbound on CI hosts, so every
# delivery fails fast and must be dead-lettered, not dropped
DEAD_WEBHOOK_RULES = """
[[rules]]
name = "ci-retro-webhook"

[rules.match]
verdict = "malicious"

[rules.actions]
webhook = "http://127.0.0.1:9/triage-smoke"
"""


def run_cli(*argv: str, expect: tuple = (0,)) -> subprocess.CompletedProcess:
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True,
        text=True,
    )
    if result.returncode not in expect:
        raise SystemExit(
            f"triage smoke: {argv[0]} exited {result.returncode} "
            f"(expected one of {expect})\nstdout:\n{result.stdout}\n"
            f"stderr:\n{result.stderr}"
        )
    return result


def triage(
    rules: pathlib.Path,
    registry: pathlib.Path,
    model: str,
    *extra: str,
    expect: tuple = (0,),
) -> dict:
    result = run_cli(
        "triage",
        str(rules),
        "--registry",
        str(registry),
        "--model-path",
        model,
        "--json",
        *extra,
        expect=expect,
    )
    payload = json.loads(result.stdout)
    payload["_stderr"] = result.stderr
    payload["_returncode"] = result.returncode
    return payload


def query_tagged(registry: pathlib.Path, tag: str) -> list:
    result = run_cli(
        "query",
        "--registry",
        str(registry),
        "--tag",
        tag,
        "--all",
        "--json",
    )
    return json.loads(result.stdout)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model-path", required=True)
    parser.add_argument("--num-contracts", type=int, default=16)
    args = parser.parse_args()

    from repro.datasets.generator import CorpusGenerator, GeneratorConfig

    corpus = CorpusGenerator(
        GeneratorConfig(
            platform="evm",
            num_samples=args.num_contracts,
            label_noise=0.0,
            seed=11,
        )
    ).generate("triage-smoke")

    with tempfile.TemporaryDirectory(prefix="triage-smoke-") as tmp:
        root = pathlib.Path(tmp)
        feed = root / "feed"
        feed.mkdir()
        for sample in corpus:
            (feed / f"{sample.sample_id}.bin").write_bytes(sample.bytecode)
        registry = root / "verdicts.db"
        rules = root / "rules.toml"
        rules.write_text(RULES)

        # exit 2 = malicious contracts found, which the corpus guarantees
        run_cli(
            "scan-batch",
            "--model-path",
            args.model_path,
            "--input-dir",
            str(feed),
            "--registry",
            str(registry),
            expect=(0, 2),
        )
        print(f"triage smoke: registry seeded from {args.num_contracts} contracts")

        dry = triage(rules, registry, args.model_path, "--dry-run", "--explain")
        if not dry["dry_run"] or dry["rows_matched"] <= 0:
            raise SystemExit(f"triage smoke: dry run found no matches: {dry}")
        if dry["tags_applied"] != 0:
            raise SystemExit("triage smoke: dry run applied tags")
        if "plan:" not in dry["_stderr"]:
            raise SystemExit("triage smoke: --explain printed no plan lines")
        if query_tagged(registry, "ci-retro-hot"):
            raise SystemExit("triage smoke: dry run leaked tags into the registry")
        print(
            f"triage smoke: dry run matched {dry['rows_matched']} rows, "
            f"wrote nothing (exit 0)"
        )

        applied = triage(rules, registry, args.model_path, expect=(2,))
        if applied["rule_matches"] != dry["rule_matches"]:
            raise SystemExit(
                f"triage smoke: apply/dry-run parity broken: "
                f"{applied['rule_matches']} != {dry['rule_matches']}"
            )
        if applied["tags_applied"] <= 0:
            raise SystemExit("triage smoke: apply run tagged nothing")
        hot = query_tagged(registry, "ci-retro-hot")
        if len(hot) != applied["rule_matches"]["ci-retro-hot"]:
            raise SystemExit(
                f"triage smoke: {len(hot)} ci-retro-hot tags visible, "
                f"expected {applied['rule_matches']['ci-retro-hot']}"
            )
        print(
            f"triage smoke: apply matched the dry run rule-for-rule, "
            f"tagged {applied['tags_applied']} rows, exited 2 on the "
            f"exit_nonzero rule"
        )

        again = triage(rules, registry, args.model_path, "--no-resume", expect=(2,))
        if again["rule_matches"] != applied["rule_matches"]:
            raise SystemExit("triage smoke: re-apply match counts drifted")
        if again["tags_applied"] != 0:
            raise SystemExit(
                f"triage smoke: re-apply was not idempotent "
                f"({again['tags_applied']} new tags)"
            )
        print("triage smoke: re-apply is idempotent (0 new tags)")

        webhook_rules = root / "webhook-rules.toml"
        webhook_rules.write_text(DEAD_WEBHOOK_RULES)
        dead_letter = root / "dead-letter.jsonl"
        hooked = triage(
            webhook_rules,
            registry,
            args.model_path,
            "--dead-letter-file",
            str(dead_letter),
        )
        if hooked["rows_matched"] <= 0:
            raise SystemExit("triage smoke: webhook rule matched nothing")
        if "dead-lettered" not in hooked["_stderr"]:
            raise SystemExit("triage smoke: dead-letter count missing from stderr")
        if not dead_letter.exists():
            raise SystemExit("triage smoke: dead-letter sink was not created")
        entries = [json.loads(line) for line in dead_letter.read_text().splitlines()]
        if len(entries) != hooked["rows_matched"]:
            raise SystemExit(
                f"triage smoke: {len(entries)} dead-letter entries for "
                f"{hooked['rows_matched']} failed deliveries"
            )
        print(
            f"triage smoke: {len(entries)} dead webhook deliveries "
            f"captured in the JSONL sink -- ok"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
