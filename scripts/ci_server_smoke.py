#!/usr/bin/env python
"""CI smoke test against a running ``scamdetect serve`` instance.

Started by the CI workflow after launching the server in the background::

    scamdetect serve --model-path /tmp/ci-model --port 8742 &
    python scripts/ci_server_smoke.py --port 8742

Asserts, against a live server over real HTTP:

1. ``GET /healthz`` answers 200 with ``status: ok``;
2. ``POST /scan`` of a freshly generated contract returns a well-formed
   verdict (all report fields present, verdict in {benign, malicious},
   probability consistent with the label);
3. a burst of concurrent scans plus one ``/scan-batch`` works and
   ``GET /metrics`` shows the counters advancing and the coalescer forming
   at least one inference batch of size > 1.

Exits non-zero with a readable message on the first violated expectation.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import sys

from repro.datasets.generator import CorpusGenerator, GeneratorConfig
from repro.service import ServerClient


def check(condition: bool, message: str) -> None:
    if not condition:
        sys.exit(f"server smoke test FAILED: {message}")
    print(f"  ok: {message}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8742)
    parser.add_argument("--startup-timeout", type=float, default=30.0)
    args = parser.parse_args(argv)

    client = ServerClient(host=args.host, port=args.port)
    health = client.wait_until_ready(timeout=args.startup_timeout)
    check(health.get("status") == "ok", "GET /healthz answers status=ok")
    check("model" in health and "uptime_seconds" in health,
          "health payload names the model and uptime")

    corpus = CorpusGenerator(GeneratorConfig(
        platform="evm", num_samples=16, label_noise=0.0, seed=99)).generate()
    report = client.scan(corpus[0].bytecode, sample_id="smoke-0")
    for field in ("sample_id", "platform", "verdict", "label",
                  "malicious_probability", "cfg_blocks", "model"):
        check(field in report, f"verdict JSON carries {field!r}")
    check(report["sample_id"] == "smoke-0", "sample_id echoes the request")
    check(report["verdict"] in ("benign", "malicious"),
          f"verdict is well-formed (got {report['verdict']!r})")
    check(0.0 <= report["malicious_probability"] <= 1.0,
          "malicious_probability is a probability")
    check((report["malicious_probability"] >= 0.5) ==
          (report["verdict"] == "malicious"),
          "verdict agrees with the probability and threshold")

    # a concurrent burst: every verdict well-formed, coalescing engaged
    codes = [sample.bytecode for sample in corpus] * 2
    with concurrent.futures.ThreadPoolExecutor(max_workers=16) as pool:
        reports = list(pool.map(client.scan, codes))
    check(all(r["verdict"] in ("benign", "malicious") for r in reports),
          f"{len(reports)} concurrent scans all returned verdicts")
    batch = client.scan_batch([sample.bytecode for sample in corpus[:4]])
    check(batch["contracts"] == 4 and len(batch["reports"]) == 4,
          "POST /scan-batch scans all submitted contracts")

    metrics = client.metrics()
    check(metrics["requests"].get("scan", 0) >= len(codes) + 1,
          "metrics count the scan requests")
    check(metrics["scans"]["contracts"] >= len(codes) + 5,
          "metrics count the scanned contracts")
    check(metrics["latency"]["scan"]["p50_ms"] > 0.0,
          "latency percentiles are reported")
    check(metrics["scans"]["batches"]["max_size"] > 1,
          "request coalescing formed at least one batch of size > 1")
    print("server smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
