#!/usr/bin/env python
"""CI smoke test for the observability tier (real subprocess under load).

Exercises the tracing + exposition stack the way an operator would:

1. spawn ``scamdetect serve --ingest-queue --trace-file --log-json`` as a
   subprocess against a fresh registry,
2. assert ``/healthz`` reports tracing armed (and fault injection
   disarmed) plus the package version and ``uptime_s``,
3. drive load through every front door: ``POST /v1/scan``,
   ``POST /v1/scan-batch`` and ``POST /v1/ingest``,
4. scrape ``GET /v1/metrics?format=prometheus`` and syntax-check the
   exposition (TYPE/HELP lines, no duplicate families or samples) with
   the same validator the unit tests use,
5. SIGTERM the server, assert a clean drain (exit 0),
6. parse the trace JSONL and gate the span-accounting invariants: every
   trace has exactly one root, no orphan spans, children nest,
7. assert the stderr stream is valid JSON-lines (``--log-json``),
8. run ``scamdetect trace summarize`` over the trace file and assert the
   per-site table renders.

Usage::

    python scripts/ci_obs_smoke.py --model-path /tmp/ci-model
"""

from __future__ import annotations

import argparse
import json
import pathlib
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request


def wait_for(predicate, timeout: float, what: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.25)
    raise SystemExit(f"obs smoke: timed out waiting for {what}")


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


def post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def _probe(base: str) -> bool:
    try:
        return get_json(f"{base}/healthz")["status"] in ("ok", "degraded")
    except OSError:
        return False


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model-path", required=True)
    parser.add_argument("--num-contracts", type=int, default=16)
    parser.add_argument("--port", type=int, default=8773)
    parser.add_argument("--timeout", type=float, default=60.0)
    args = parser.parse_args()

    from repro.datasets.generator import CorpusGenerator, GeneratorConfig
    from repro.obs import validate_exposition, verify_traces
    from repro.obs.trace import load_trace_file

    samples = list(
        CorpusGenerator(
            GeneratorConfig(
                platform="evm",
                num_samples=args.num_contracts + 2,
                label_noise=0.0,
                seed=13,
            )
        ).generate("obs-smoke")
    )

    with tempfile.TemporaryDirectory(prefix="obs-smoke-") as tmp:
        root = pathlib.Path(tmp)
        trace_file = root / "trace.jsonl"
        stderr_file = root / "server-stderr.log"
        base = f"http://127.0.0.1:{args.port}"

        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--model-path",
                args.model_path,
                "--registry",
                str(root / "verdicts.db"),
                "--ingest-queue",
                "64",
                "--port",
                str(args.port),
                "--max-wait-ms",
                "15",
                "--trace-file",
                str(trace_file),
                "--log-json",
            ],
            stderr=stderr_file.open("wb"),
        )
        try:
            wait_for(
                lambda: server.poll() is None and _probe(base),
                args.timeout,
                "the traced server to come up",
            )
            health = get_json(f"{base}/healthz")
            assert health["tracing"] == "armed", health
            assert health["fault_injection"] == "disarmed", health
            assert health["version"] and health["uptime_s"] >= 0.0, health
            print(
                f"obs smoke: server up, tracing armed "
                f"(version {health['version']})"
            )

            # load through every front door
            for index, sample in enumerate(samples[: args.num_contracts]):
                post_json(
                    f"{base}/v1/scan",
                    {
                        "bytecode": sample.bytecode.hex(),
                        "sample_id": f"scan-{index}",
                    },
                )
            post_json(
                f"{base}/v1/scan-batch",
                {
                    "contracts": [
                        {
                            "bytecode": sample.bytecode.hex(),
                            "sample_id": f"batch-{index}",
                        }
                        for index, sample in enumerate(samples[-2:])
                    ]
                },
            )
            accepted = post_json(
                f"{base}/v1/ingest",
                {
                    "contracts": [
                        {
                            "bytecode": samples[-1].bytecode.hex(),
                            "sample_id": "pushed-contract",
                        }
                    ]
                },
            )
            assert accepted["accepted"] == 1, accepted
            wait_for(
                lambda: get_json(f"{base}/v1/metrics")["ingest"]["queue"][
                    "drained"
                ]
                >= 1,
                args.timeout,
                "the ingest queue to drain the pushed contract",
            )
            print(
                f"obs smoke: load done "
                f"({args.num_contracts} scans + 1 batch + 1 ingest)"
            )

            # Prometheus exposition must be syntactically valid and carry
            # the request/scan/ingest families the load just advanced
            request = urllib.request.Request(
                f"{base}/v1/metrics?format=prometheus"
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                content_type = response.headers.get("Content-Type", "")
                deprecated = response.headers.get("Deprecation")
                text = response.read().decode("utf-8")
            assert content_type.startswith("text/plain"), content_type
            assert deprecated is None, "versioned path flagged deprecated"
            errors = validate_exposition(text)
            if errors:
                for error in errors[:20]:
                    print(f"obs smoke: exposition error: {error}")
                raise SystemExit(
                    f"obs smoke: invalid Prometheus exposition "
                    f"({len(errors)} errors)"
                )
            for family in (
                'scamdetect_requests_total{endpoint="scan"}',
                "scamdetect_tracing_armed 1",
                "scamdetect_contracts_scanned_total",
                "scamdetect_ingest_queue_drained_total",
            ):
                assert family in text, f"missing {family!r} in exposition"
            print(
                f"obs smoke: Prometheus exposition valid "
                f"({len(text.splitlines())} lines)"
            )
        finally:
            server.send_signal(signal.SIGTERM)
            exit_code = server.wait(timeout=30)
        if exit_code != 0:
            sys.stderr.write(stderr_file.read_text())
            raise SystemExit(f"obs smoke: server exited {exit_code}")
        print("obs smoke: server drained cleanly (exit 0)")

        # the trace JSONL must parse and satisfy the accounting invariants
        records = load_trace_file(trace_file)
        invariants = verify_traces(records)
        print(f"obs smoke: trace invariants {invariants}")
        if (
            invariants["accounting_mismatches"]
            or invariants["orphan_spans"]
            or invariants["nesting_mismatches"]
        ):
            raise SystemExit("obs smoke: span-accounting invariants violated")
        sites = {record["site"] for record in records}
        for site in ("server.request", "gnn.infer", "ingest.enqueue",
                     "ingest.drain", "registry.write"):
            assert site in sites, f"no {site!r} span in {sorted(sites)}"
        # one root trace per server request + per ingest drain, at minimum
        assert invariants["traces"] >= args.num_contracts, invariants

        # --log-json: every stderr line the logger wrote is a JSON object
        json_lines = 0
        for line in stderr_file.read_text().splitlines():
            line = line.strip()
            if not line.startswith("{"):
                continue  # CLI banners (tracing notice etc.) stay human
            record = json.loads(line)
            assert "level" in record and "message" in record, record
            json_lines += 1
        print(f"obs smoke: {json_lines} structured log lines parsed")

        summary = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "trace",
                "summarize",
                str(trace_file),
            ],
            capture_output=True,
            text=True,
        )
        if summary.returncode != 0:
            sys.stderr.write(summary.stderr)
            raise SystemExit(
                f"obs smoke: trace summarize exited {summary.returncode}"
            )
        assert "server.request" in summary.stdout, summary.stdout
        print("obs smoke: trace summarize rendered the per-site table -- ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
