#!/usr/bin/env python
"""CI smoke test for the watch daemon (run against a real subprocess).

Drives the full continuous-scanning loop the way an operator would:

1. generate a small corpus directory and a triage rules file,
2. spawn ``scamdetect watch`` as a subprocess with a short poll interval,
3. wait for the initial ingest to land in the SQLite registry,
4. drop a *new* contract into the watched directory and assert that its
   registry row and the rule's JSONL alert appear within a few polls,
5. send SIGTERM and assert the daemon drains and exits cleanly (exit code
   0 or 2 -- 2 means an ``exit_nonzero`` triage rule fired, which is
   expected when the corpus contains malicious contracts),
6. re-read the registry with ``scamdetect query --json`` and sanity-check
   the recorded verdicts.

Usage::

    python scripts/ci_watch_smoke.py --model-path /tmp/ci-model
"""

from __future__ import annotations

import argparse
import json
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

RULES = """
[[rules]]
name = "ci-alert-on-scam"

[rules.match]
verdict = "malicious"

[rules.actions]
tag = ["ci-hot"]
alert = true
exit_nonzero = true
"""


def wait_for(predicate, timeout: float, what: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.25)
    raise SystemExit(f"watch smoke: timed out waiting for {what}")


def registry_rows(registry: pathlib.Path) -> list:
    if not registry.exists():
        return []
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "query",
            "--registry",
            str(registry),
            "--all",
            "--json",
        ],
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        return []
    return json.loads(result.stdout)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model-path", required=True)
    parser.add_argument("--num-contracts", type=int, default=12)
    parser.add_argument("--timeout", type=float, default=60.0)
    args = parser.parse_args()

    from repro.datasets.generator import CorpusGenerator, GeneratorConfig

    corpus = CorpusGenerator(
        GeneratorConfig(
            platform="evm",
            num_samples=args.num_contracts + 1,
            label_noise=0.0,
            seed=7,
        )
    ).generate("watch-smoke")
    samples = list(corpus)

    with tempfile.TemporaryDirectory(prefix="watch-smoke-") as tmp:
        root = pathlib.Path(tmp)
        feed = root / "feed"
        feed.mkdir()
        for sample in samples[:-1]:
            (feed / f"{sample.sample_id}.bin").write_bytes(sample.bytecode)
        rules = root / "rules.toml"
        rules.write_text(RULES)
        registry = root / "verdicts.db"
        alerts = root / "alerts.jsonl"

        daemon = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "watch",
                str(feed),
                "--model-path",
                args.model_path,
                "--registry",
                str(registry),
                "--rules",
                str(rules),
                "--alert-file",
                str(alerts),
                "--interval",
                "0.5",
            ],
        )
        try:
            wait_for(
                lambda: len(registry_rows(registry)) >= args.num_contracts,
                args.timeout,
                "the initial corpus ingest",
            )
            print(
                f"watch smoke: initial ingest of {args.num_contracts} "
                f"contracts recorded"
            )

            dropped = samples[-1]
            (feed / "dropped-late.bin").write_bytes(dropped.bytecode)
            wait_for(
                lambda: any(
                    row["source_path"] == "dropped-late.bin"
                    for row in registry_rows(registry)
                ),
                args.timeout,
                "the late-dropped contract's registry row",
            )
            print("watch smoke: late drop picked up by the poll loop")

            rows = registry_rows(registry)
            malicious = [
                row
                for row in rows
                if row["report"]["verdict"] == "malicious"
            ]
            if malicious:
                wait_for(
                    lambda: alerts.exists()
                    and len(alerts.read_text().splitlines())
                    >= len(malicious),
                    args.timeout,
                    "the triage rule's JSONL alerts",
                )
                tagged = [
                    row for row in rows if "ci-hot" in row["tags"]
                ]
                if not tagged:
                    # tags are applied in the same cycle the verdict lands;
                    # re-read once in case we raced the first query
                    tagged = [
                        row
                        for row in registry_rows(registry)
                        if "ci-hot" in row["tags"]
                    ]
                assert tagged, "rule matched but no ci-hot tags recorded"
                print(
                    f"watch smoke: {len(malicious)} malicious verdicts "
                    f"alerted and tagged"
                )
        finally:
            daemon.send_signal(signal.SIGTERM)
            exit_code = daemon.wait(timeout=30)
        if exit_code not in (0, 2):
            raise SystemExit(
                f"watch smoke: daemon exited {exit_code} after SIGTERM "
                f"(expected 0, or 2 when the exit_nonzero rule fired)"
            )
        print(f"watch smoke: daemon drained cleanly (exit {exit_code})")

        rows = registry_rows(registry)
        expected = args.num_contracts + 1
        if len(rows) != expected:
            raise SystemExit(
                f"watch smoke: registry holds {len(rows)} verdicts, "
                f"expected {expected}"
            )
        print(f"watch smoke: registry holds all {expected} verdicts -- ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
