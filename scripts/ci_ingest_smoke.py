#!/usr/bin/env python
"""CI smoke test for the event-driven ingest tier (real subprocesses).

Exercises both ingest front doors the way an operator would:

1. generate a small corpus directory,
2. spawn ``scamdetect watch --event-driven`` as a subprocess (inotify on
   Linux runners, the poll-walk fallback elsewhere),
3. wait for the backfill to land in the SQLite registry,
4. drop a *new* contract into the watched tree and assert its registry
   row appears at event latency,
5. SIGTERM the watcher and assert it drains and exits cleanly (0, or 2
   when an ``exit_nonzero`` triage rule fired),
6. spawn ``scamdetect serve --ingest-queue`` against the same registry,
   ``POST /v1/ingest`` a pushed contract, and assert its verdict is
   recorded and the queue counters surface in ``/healthz``,
7. SIGTERM the server and assert the queue drained (no accepted contract
   is lost).

Usage::

    python scripts/ci_ingest_smoke.py --model-path /tmp/ci-model
"""

from __future__ import annotations

import argparse
import json
import pathlib
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request


def wait_for(predicate, timeout: float, what: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.25)
    raise SystemExit(f"ingest smoke: timed out waiting for {what}")


def registry_rows(registry: pathlib.Path) -> list:
    if not registry.exists():
        return []
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "query",
            "--registry",
            str(registry),
            "--all",
            "--json",
        ],
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        return []
    return json.loads(result.stdout)


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model-path", required=True)
    parser.add_argument("--num-contracts", type=int, default=12)
    parser.add_argument("--port", type=int, default=8761)
    parser.add_argument("--timeout", type=float, default=60.0)
    args = parser.parse_args()

    from repro.datasets.generator import CorpusGenerator, GeneratorConfig

    corpus = CorpusGenerator(
        GeneratorConfig(
            platform="evm",
            num_samples=args.num_contracts + 2,
            label_noise=0.0,
            seed=11,
        )
    ).generate("ingest-smoke")
    samples = list(corpus)

    with tempfile.TemporaryDirectory(prefix="ingest-smoke-") as tmp:
        root = pathlib.Path(tmp)
        feed = root / "feed"
        feed.mkdir()
        for sample in samples[: args.num_contracts]:
            (feed / f"{sample.sample_id}.bin").write_bytes(sample.bytecode)
        registry = root / "verdicts.db"

        watcher = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "watch",
                str(feed),
                "--event-driven",
                "--model-path",
                args.model_path,
                "--registry",
                str(registry),
                "--interval",
                "0.2",
            ],
        )
        try:
            wait_for(
                lambda: len(registry_rows(registry)) >= args.num_contracts,
                args.timeout,
                "the event-driven backfill",
            )
            print(
                f"ingest smoke: backfill of {args.num_contracts} contracts "
                f"recorded"
            )

            dropped = samples[args.num_contracts]
            (feed / "dropped-late.bin").write_bytes(dropped.bytecode)
            wait_for(
                lambda: any(
                    row["source_path"] == "dropped-late.bin"
                    for row in registry_rows(registry)
                ),
                args.timeout,
                "the late-dropped contract's registry row",
            )
            print("ingest smoke: late drop landed via the event watcher")
        finally:
            watcher.send_signal(signal.SIGTERM)
            exit_code = watcher.wait(timeout=30)
        if exit_code not in (0, 2):
            raise SystemExit(
                f"ingest smoke: watcher exited {exit_code} after SIGTERM "
                f"(expected 0, or 2 when an exit_nonzero rule fired)"
            )
        print(f"ingest smoke: watcher drained cleanly (exit {exit_code})")

        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--model-path",
                args.model_path,
                "--registry",
                str(registry),
                "--ingest-queue",
                "64",
                "--port",
                str(args.port),
                "--max-wait-ms",
                "15",
            ],
        )
        base = f"http://127.0.0.1:{args.port}"
        try:
            wait_for(
                lambda: server.poll() is None and _probe(base),
                args.timeout,
                "the ingest server to come up",
            )
            health = get_json(f"{base}/healthz")
            ingest = health.get("ingest")
            assert ingest and ingest["capacity"] == 64, health
            print(
                f"ingest smoke: server up, queue capacity "
                f"{ingest['capacity']} (backend {ingest['backend']})"
            )

            pushed = samples[args.num_contracts + 1]
            body = json.dumps(
                {
                    "contracts": [
                        {
                            "bytecode": pushed.bytecode.hex(),
                            "sample_id": "pushed-contract",
                        }
                    ]
                }
            ).encode()
            request = urllib.request.Request(
                f"{base}/v1/ingest",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                accepted = json.loads(response.read())
                assert response.status == 202, response.status
            assert accepted["accepted"] == 1, accepted
            wait_for(
                lambda: any(
                    row["report"]["sample_id"] == "pushed-contract"
                    for row in registry_rows(registry)
                ),
                args.timeout,
                "the pushed contract's registry row",
            )
            print("ingest smoke: POST /v1/ingest verdict recorded")

            metrics = get_json(f"{base}/v1/metrics")
            stats = metrics["ingest"]["stats"]
            assert stats["enqueued"] >= 1, metrics["ingest"]
            print(
                f"ingest smoke: metrics report {stats['enqueued']} enqueued, "
                f"{stats['drained']} drained"
            )
        finally:
            server.send_signal(signal.SIGTERM)
            exit_code = server.wait(timeout=30)
        if exit_code != 0:
            raise SystemExit(
                f"ingest smoke: server exited {exit_code} after SIGTERM"
            )
        print("ingest smoke: server drained cleanly (exit 0)")

        rows = registry_rows(registry)
        expected = args.num_contracts + 2
        if len(rows) != expected:
            raise SystemExit(
                f"ingest smoke: registry holds {len(rows)} verdicts, "
                f"expected {expected}"
            )
        print(f"ingest smoke: registry holds all {expected} verdicts -- ok")
    return 0


def _probe(base: str) -> bool:
    try:
        return get_json(f"{base}/healthz")["status"] in ("ok", "degraded")
    except OSError:
        return False


if __name__ == "__main__":
    sys.exit(main())
