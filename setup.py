"""Packaging for the ScamDetect reproduction.

``pip install -e .`` makes ``import repro`` work without PYTHONPATH tricks
and installs the ``scamdetect`` console entry point.
"""

import pathlib

from setuptools import find_packages, setup

README = pathlib.Path(__file__).parent / "README.md"

setup(
    name="scamdetect-repro",
    version="1.0.0",
    description=("Reproduction of ScamDetect (DSN-S 2025): platform-agnostic "
                 "smart-contract malware detection with GNNs over CFGs, plus "
                 "a batch scanning service layer and a coalescing scan "
                 "server"),
    long_description=README.read_text() if README.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=[
        "numpy",
        # the triage rules engine parses TOML; stdlib tomllib exists from
        # 3.11, older interpreters use the API-identical backport
        'tomli>=1.1.0; python_version < "3.11"',
    ],
    extras_require={
        # SciPy accelerates the batched-graph engine's sparse kernels; the
        # engine falls back to a pure-NumPy path when it is absent
        "accel": ["scipy"],
        "test": ["pytest", "pytest-benchmark", "scipy"],
        # lint/format/coverage tooling used by the CI lint and coverage jobs
        # ([tool.ruff] / [tool.coverage.*] in pyproject.toml hold the config)
        "dev": ["ruff", "pytest", "pytest-benchmark", "scipy", "coverage"],
    },
    entry_points={
        "console_scripts": [
            "scamdetect=repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Security",
    ],
)
